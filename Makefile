GO ?= go

.PHONY: all build vet test race race-sim bench check trace-smoke profile-smoke bench-json bench-check fuzz-smoke adversary-smoke fleet-smoke border-matrix-smoke replay-smoke sweep-smoke serve-smoke obs-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full test suite, including the full-figure determinism sweeps.
test:
	$(GO) test ./...

# Race-enabled run; -short skips the multi-minute full sweeps but still
# exercises the concurrent runner (smoke sweeps run at Jobs=8).
race:
	$(GO) test -race -short ./...

# Race-enabled, non-short runs of the two packages whose goroutines share
# work: the sharded conservative-parallel engine and the experiment runner.
race-sim:
	$(GO) test -race ./internal/sim ./internal/exp

# Fleet smoke: the same fleet executed serially and on 4 worker goroutines
# must render byte-identically — the conservative-PDES determinism
# guarantee, checked end to end through bctool.
fleet-smoke:
	$(GO) run ./cmd/bctool fleet -tenants 8 -shards 1 > fleet-smoke-1.txt
	$(GO) run ./cmd/bctool fleet -tenants 8 -shards 4 > fleet-smoke-4.txt
	cmp fleet-smoke-1.txt fleet-smoke-4.txt
	rm -f fleet-smoke-1.txt fleet-smoke-4.txt

# One iteration of every benchmark prints each paper artifact once;
# BenchmarkExecFigure4 compares serial vs parallel sweep wall-clock.
bench:
	$(GO) test -bench . -benchtime 1x ./...

# Observability smoke: record a Chrome trace and a stats snapshot on a
# short run, then validate the trace file and the stats document (including
# every latency histogram's schema) with bctool's own checkers.
trace-smoke:
	$(GO) run ./cmd/bctool run -mode bc-bcc -class moderate -workload pathfinder \
		-trace trace-smoke.json -stats-json stats-smoke.json >/dev/null
	$(GO) run ./cmd/bctool tracecheck trace-smoke.json
	$(GO) run ./cmd/bctool tracecheck -stats stats-smoke.json
	rm -f trace-smoke.json stats-smoke.json

# Profiler smoke: the simulated-time profile keys on simulated time only,
# so the folded stacks must be byte-identical across parallelism, and the
# pprof encoding must be accepted by `go tool pprof`.
profile-smoke:
	$(GO) run ./cmd/bctool profile -quiet -jobs 1 -folded profile-smoke-1.txt
	$(GO) run ./cmd/bctool profile -quiet -jobs 4 -folded profile-smoke-4.txt -pprof profile-smoke.pb.gz
	cmp profile-smoke-1.txt profile-smoke-4.txt
	$(GO) tool pprof -top profile-smoke.pb.gz >/dev/null
	rm -f profile-smoke-1.txt profile-smoke-4.txt profile-smoke.pb.gz

# Refresh the checked-in simulator-throughput snapshot (BENCH.json).
bench-json:
	$(GO) run ./cmd/bctool bench -json > BENCH.json

# Re-run the bench matrix and compare against the checked-in snapshot:
# sim_ps/events must match exactly (the model is deterministic and
# host-independent); the events/sec delta is informational only.
bench-check:
	$(GO) run ./cmd/bctool bench -compare BENCH.json

# Red-team smoke: fixed-seed sandbox-escape campaigns against all four
# Border Control protocol variants, with the shadow-memory oracle auditing
# every crossing. Runs twice and byte-compares the reports: the campaigns
# must both hold and be deterministic. A failure prints a single
# reproducing `bctool adversary -seed ...` command.
adversary-smoke:
	$(GO) run ./cmd/bctool adversary -seed 1 -campaigns 4 -quiet > adversary-smoke.txt
	$(GO) run ./cmd/bctool adversary -seed 1 -campaigns 4 -quiet > adversary-smoke2.txt
	cmp adversary-smoke.txt adversary-smoke2.txt
	rm -f adversary-smoke.txt adversary-smoke2.txt

# Border-design matrix smoke: one Figure-4 cell per registered protection
# architecture. The flat design's output must be byte-identical to the
# golden captured before the ProtectionArchitecture refactor (the paper's
# design is timing-frozen); the alternate designs must run to a verified
# result under the same cell. Also enforces that no deprecated API
# lingers in the tree (the Figure*Ctx wrappers were removed).
border-matrix-smoke:
	$(GO) run ./cmd/bctool run -mode bc-bcc -class moderate -workload pathfinder \
		-border flat 2>/dev/null > border-smoke-flat.txt
	cmp border-smoke-flat.txt internal/harness/testdata/border-flat-cell.golden
	$(GO) run ./cmd/bctool run -mode bc-bcc -class moderate -workload pathfinder \
		-border sparta >/dev/null
	$(GO) run ./cmd/bctool run -mode bc-bcc -class moderate -workload pathfinder \
		-border range >/dev/null
	rm -f border-smoke-flat.txt
	! grep -rn "Deprecated:" --include='*.go' .

# Short coverage-guided runs of the fuzz targets: the border-protocol
# differential fuzzer, the event-engine ordering fuzzer, and the trace
# codec fuzzer. Anything they minimize lands in the package testdata/fuzz
# corpora — commit it.
fuzz-smoke:
	$(GO) test -run '^FuzzBorderCheck$$' -fuzz '^FuzzBorderCheck$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^FuzzEngineSchedule$$' -fuzz '^FuzzEngineSchedule$$' -fuzztime 10s ./internal/sim
	$(GO) test -run '^FuzzTraceCodec$$' -fuzz '^FuzzTraceCodec$$' -fuzztime 10s ./internal/tracerec

# Replay smoke: record a reference trace, replay it, and byte-compare the
# replayed report against the live run — the record/replay equivalence
# guarantee checked end to end through bctool.
replay-smoke:
	$(GO) run ./cmd/bctool record -workload pathfinder -o replay-smoke-traces >/dev/null
	$(GO) run ./cmd/bctool run -mode bc-bcc -class moderate -workload pathfinder \
		2>/dev/null > replay-smoke-live.txt
	$(GO) run ./cmd/bctool replay -mode bc-bcc -class moderate \
		replay-smoke-traces/pathfinder.bctrace 2>/dev/null > replay-smoke-rep.txt
	cmp replay-smoke-live.txt replay-smoke-rep.txt
	rm -rf replay-smoke-traces replay-smoke-live.txt replay-smoke-rep.txt

# Sweep smoke: a 16-cell synthetic-traffic replay grid must render
# byte-identically on the direct engine at one job and on the sharded
# engine at four jobs — sweeps are deterministic in both host and engine
# parallelism.
sweep-smoke:
	$(GO) run ./cmd/bctool sweep -traffic bursty -seeds 2 -modes bc-nobcc,bc-bcc \
		-borders flat,range -classes both -jobs 1 -shards 1 -quiet > sweep-smoke-1.txt
	$(GO) run ./cmd/bctool sweep -traffic bursty -seeds 2 -modes bc-nobcc,bc-bcc \
		-borders flat,range -classes both -jobs 4 -shards 4 -quiet > sweep-smoke-4.txt
	cmp sweep-smoke-1.txt sweep-smoke-4.txt
	rm -f sweep-smoke-1.txt sweep-smoke-4.txt

# Serve smoke: the experiment service must produce the same bytes as the
# local CLI. One daemon per worker count (1, 2, 4 subprocesses) serves the
# same sweep grid; each artifact is byte-compared against the in-process
# `bctool sweep` CSV. A second submission to the last daemon must be a
# cache hit (no re-execution, logged on stderr) with identical bytes.
SERVE_SMOKE_AXES = -traffic bursty,stream -seeds 1 -modes bc-nobcc,bc-bcc -borders flat -classes moderate -csv
serve-smoke:
	$(GO) build -o serve-smoke-bctool ./cmd/bctool
	./serve-smoke-bctool sweep $(SERVE_SMOKE_AXES) -quiet > serve-smoke-local.csv
	for w in 1 2 4; do \
		./serve-smoke-bctool serve -addr 127.0.0.1:18346 -workers $$w -quiet & pid=$$!; \
		./serve-smoke-bctool submit -addr http://127.0.0.1:18346 -wait 10s -quiet \
			sweep $(SERVE_SMOKE_AXES) > serve-smoke-$$w.csv || { kill $$pid; exit 1; }; \
		cmp serve-smoke-local.csv serve-smoke-$$w.csv || { kill $$pid; exit 1; }; \
		kill $$pid; wait $$pid; test $$? -eq 130 || exit 1; \
	done
	./serve-smoke-bctool serve -addr 127.0.0.1:18346 -workers 2 -quiet & pid=$$!; \
	./serve-smoke-bctool submit -addr http://127.0.0.1:18346 -wait 10s -quiet \
		sweep $(SERVE_SMOKE_AXES) > serve-smoke-a.csv 2>/dev/null || { kill $$pid; exit 1; }; \
	./serve-smoke-bctool submit -addr http://127.0.0.1:18346 -quiet \
		sweep $(SERVE_SMOKE_AXES) > serve-smoke-b.csv 2>serve-smoke-b.err || { kill $$pid; exit 1; }; \
	grep -q "cache hit" serve-smoke-b.err || { kill $$pid; exit 1; }; \
	cmp serve-smoke-a.csv serve-smoke-b.csv || { kill $$pid; exit 1; }; \
	kill $$pid; wait $$pid; test $$? -eq 130
	rm -f serve-smoke-bctool serve-smoke-local.csv serve-smoke-1.csv serve-smoke-2.csv serve-smoke-4.csv serve-smoke-a.csv serve-smoke-b.csv serve-smoke-b.err

# Telemetry smoke: the fleet observability plane end to end. A daemon
# answers `submit -ping`, serves a sweep, and its /v1/metrics page must
# parse and carry every required daemon + job series (`top -require`).
# The same grid submitted twice must `sweepdiff` clean (observation is
# pure and the simulator deterministic); perturbing one row must make
# sweepdiff exit non-zero — the regression-triage path actually triages.
OBS_SMOKE_AXES = -traffic bursty -seeds 1 -modes bc-nobcc,bc-bcc -borders flat -classes moderate -csv
obs-smoke:
	$(GO) build -o obs-smoke-bctool ./cmd/bctool
	./obs-smoke-bctool serve -addr 127.0.0.1:18347 -workers 2 -log-level off & pid=$$!; \
	./obs-smoke-bctool submit -addr http://127.0.0.1:18347 -wait 10s -ping >/dev/null || { kill $$pid; exit 1; }; \
	./obs-smoke-bctool submit -addr http://127.0.0.1:18347 -quiet \
		sweep $(OBS_SMOKE_AXES) > obs-smoke-a.csv 2>/dev/null || { kill $$pid; exit 1; }; \
	./obs-smoke-bctool top -addr http://127.0.0.1:18347 \
		-require bc_daemon_info,bc_daemon_uptime_seconds,bc_daemon_queue_depth,bc_daemon_queue_capacity,bc_daemon_jobs,bc_daemon_cache_hit_ratio,bc_daemon_workers_spawned_total,bc_daemon_watch_events_total,bc_job_sweep_cells \
		>/dev/null || { kill $$pid; exit 1; }; \
	./obs-smoke-bctool submit -addr http://127.0.0.1:18347 -quiet \
		sweep $(OBS_SMOKE_AXES) > obs-smoke-b.csv 2>/dev/null || { kill $$pid; exit 1; }; \
	kill $$pid; wait $$pid; test $$? -eq 130
	./obs-smoke-bctool sweepdiff obs-smoke-a.csv obs-smoke-b.csv
	sed 's/^\([^,]*bc-bcc[^,]*\),\([0-9]*\)/\1,9\2/' obs-smoke-a.csv > obs-smoke-c.csv
	! ./obs-smoke-bctool sweepdiff obs-smoke-a.csv obs-smoke-c.csv
	rm -f obs-smoke-bctool obs-smoke-a.csv obs-smoke-b.csv obs-smoke-c.csv

check: vet build test race race-sim fleet-smoke trace-smoke profile-smoke adversary-smoke border-matrix-smoke replay-smoke sweep-smoke serve-smoke obs-smoke fuzz-smoke bench-check
