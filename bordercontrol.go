// Package bordercontrol is a full-system reproduction of "Border Control:
// Sandboxing Accelerators" (Olson, Power, Hill, Wood — MICRO-48, 2015).
//
// Border Control is a hardware sandbox at the boundary between an untrusted
// accelerator (with its own TLBs and physically-addressed caches) and the
// trusted host memory system: every memory request crossing the border is
// checked against a per-accelerator, physically-indexed Protection Table
// (2 bits per physical page, populated lazily from IOMMU/ATS translations)
// backed by a small Border Control Cache.
//
// The package exposes two levels of API:
//
//   - The mechanism: ProtectionTable, BCC and BorderControl — the paper's
//     contribution, usable inside any simulated memory system.
//   - The evaluation: fully assembled simulated systems (CPU + OS + page
//     tables + IOMMU/ATS + coherent GPU cache hierarchies + DRAM) for the
//     five safety configurations the paper compares, the seven
//     Rodinia-derived workloads, and generators for every table and figure
//     in the paper's evaluation section.
//
// Quick start:
//
//	res, err := bordercontrol.Run(bordercontrol.BCBCC,
//	    bordercontrol.HighlyThreaded, "bfs", bordercontrol.DefaultParams(),
//	    bordercontrol.RunOptions{})
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package bordercontrol

import (
	"context"
	"fmt"
	"time"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/adversary"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/core"
	"bordercontrol/internal/exp"
	"bordercontrol/internal/harness"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/prof"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
	"bordercontrol/internal/tracerec"
	"bordercontrol/internal/traffic"
	"bordercontrol/internal/workload"
)

// Mode selects one of the five evaluated safety configurations.
type Mode = harness.Mode

// The configurations under study (paper Table 2).
const (
	// ATSOnly is the unsafe baseline: translations served by the IOMMU,
	// physical requests unchecked.
	ATSOnly = harness.ATSOnly
	// FullIOMMU translates and checks every request; no accelerator caches.
	FullIOMMU = harness.FullIOMMU
	// CAPILike keeps TLB and cache in trusted hardware, CAPI-style.
	CAPILike = harness.CAPILike
	// BCNoBCC is Border Control with only the in-memory Protection Table.
	BCNoBCC = harness.BCNoBCC
	// BCBCC is Border Control with the Border Control Cache — the paper's
	// headline configuration.
	BCBCC = harness.BCBCC
)

// GPUClass selects the accelerator proxy.
type GPUClass = harness.GPUClass

// The two GPU proxies of paper §5.1.
const (
	// HighlyThreaded is the 8-CU, latency-tolerant GPU.
	HighlyThreaded = harness.HighlyThreaded
	// ModeratelyThreaded is the 1-CU, latency-sensitive GPU.
	ModeratelyThreaded = harness.ModeratelyThreaded
)

// Params collects every system parameter (paper Table 3 by default).
type Params = harness.Params

// RunOptions tunes one execution (downgrade injection, verification).
type RunOptions = harness.RunOptions

// Result reports one workload execution.
type Result = harness.RunResult

// System is a fully assembled simulated machine; use it directly for
// custom experiments beyond the stock Run entry point.
type System = harness.System

// DefaultParams returns the paper's Table 3 system configuration.
func DefaultParams() Params { return harness.DefaultParams() }

// Modes lists the five configurations in the paper's order.
func Modes() []Mode { return harness.Modes() }

// Workloads lists the seven Rodinia-derived benchmark names in the paper's
// order.
func Workloads() []string { return workload.Names() }

// NewSystem assembles a simulated machine for the given configuration.
func NewSystem(mode Mode, class GPUClass, p Params) (*System, error) {
	return harness.NewSystem(mode, class, p)
}

// Run executes the named workload on a fresh system and reports its
// runtime, border statistics, and functional-verification outcome.
func Run(mode Mode, class GPUClass, workloadName string, p Params, opts RunOptions) (Result, error) {
	return RunCtx(context.Background(), mode, class, workloadName, p, opts)
}

// RunCtx is Run with cooperative cancellation: the simulation engine polls
// ctx between events, so cancelling (or timing out) ctx aborts the
// simulation promptly with a *RunError wrapping ctx.Err().
func RunCtx(ctx context.Context, mode Mode, class GPUClass, workloadName string, p Params, opts RunOptions) (Result, error) {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return Result{}, fmt.Errorf("bordercontrol: unknown workload %q (have %v)", workloadName, workload.Names())
	}
	return harness.RunCtx(ctx, mode, class, spec, p, opts)
}

// RunError identifies which simulation of a sweep failed: workload, mode,
// GPU class, failing stage, and the wrapped cause (for a GPU abort, the
// border-violation detail).
type RunError = harness.RunError

// Fleet-scale evaluation: many tenant accelerator sandboxes — each a full
// System with its own OS, ASID, IOMMU/ATS, border and caches — execute on
// one sharded conservative-parallel simulation, coordinated by a host
// shard. Host<->accelerator border crossings (launch doorbells, completion
// interrupts, downgrade commands) are the cross-shard messages; results
// are bit-identical at any worker count.

// FleetParams configures a fleet run (tenant count, mode, class, crossing
// lookahead, launch spread, churn cadence, seed, worker goroutines).
type FleetParams = harness.FleetParams

// FleetResult reports a fleet run; its Render output is deterministic.
type FleetResult = harness.FleetResult

// DefaultFleetParams returns a small fleet exercising every protocol path.
func DefaultFleetParams() FleetParams { return harness.DefaultFleetParams() }

// RunFleet executes the named workload on every tenant of a fleet.
func RunFleet(p Params, fp FleetParams, workloadName string) (FleetResult, error) {
	return RunFleetCtx(context.Background(), p, fp, workloadName)
}

// RunFleetCtx is RunFleet with cooperative cancellation: every shard of
// the fleet polls ctx and stops promptly.
func RunFleetCtx(ctx context.Context, p Params, fp FleetParams, workloadName string) (FleetResult, error) {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return FleetResult{}, fmt.Errorf("bordercontrol: unknown workload %q (have %v)", workloadName, workload.Names())
	}
	return harness.RunFleetCtx(ctx, p, fp, spec)
}

// Observability: every Result (and sweep artifact) carries a hierarchical
// metrics Snapshot, and runs can record Chrome trace-event timelines.

// Snapshot is an immutable, name-ordered capture of every metric a run's
// System registered (dotted paths: "border.bcc.miss_ratio", "gpu.l2.hits",
// "engine.events", ...). It marshals to a flat ordered JSON object.
type Snapshot = stats.Snapshot

// HostStats is a run's host-side self-measurement (wall clock, events
// fired, events per second); it feeds `bctool bench`.
type HostStats = harness.HostStats

// MergeSnapshots combines snapshots sample-by-sample: counters sum, ratio
// gauges average. Use it to aggregate the runs of a custom sweep.
func MergeSnapshots(snaps ...Snapshot) Snapshot { return stats.Merge(snaps...) }

// Tracer records simulation events in Chrome trace-event form; pass one in
// RunOptions.Tracer and write it with WriteJSON (open in Perfetto or
// chrome://tracing).
type Tracer = trace.Tracer

// TraceSet merges the per-job Tracers of a sweep into one trace file, one
// Perfetto process per job; set it on Exec.Trace.
type TraceSet = trace.Multi

// NewTracer builds a Tracer recording the given categories ("engine",
// "gpu", "border", "border.check", ... — comma-splitting each argument);
// with no categories it records everything.
func NewTracer(categories ...string) *Tracer { return trace.New(categories...) }

// NewTraceSet builds a TraceSet whose per-job Tracers record the given
// categories.
func NewTraceSet(categories ...string) *TraceSet { return trace.NewMulti(categories...) }

// Histogram is a fixed-bucket log-linear latency histogram recording
// simulated-time values with zero allocations; HistSnapshot is its
// immutable capture (exact bucket counts plus p50/p90/p99 computed from
// them). Every Result's Stats snapshot carries one per instrumented
// latency path ("border.latency_ps.bcc_hit", "iommu.translate_latency_ps",
// "engine.queue_depth", ...).
type (
	Histogram    = stats.Histogram
	HistSnapshot = stats.HistSnapshot
)

// Kind discriminates the samples of a Snapshot.
type Kind = stats.Kind

// The sample kinds.
const (
	KindCounter   = stats.KindCounter
	KindGauge     = stats.KindGauge
	KindHistogram = stats.KindHistogram
)

// ValidateStatsJSON checks a `-stats-json` document: a flat JSON object
// whose object-valued entries must each be a well-formed histogram encoding
// (required keys, genuine bucket bounds of the fixed scheme, counts that
// sum, percentiles that recompute) and whose other entries are numbers. It
// returns the number of histograms validated; it backs
// `bctool tracecheck -stats`.
func ValidateStatsJSON(blob []byte) (int, error) { return stats.ValidateSnapshotJSON(blob) }

// Profiler attributes simulated picoseconds to component paths
// ("gpu/wavefront;border/bcc", ...) as a run executes; write the result
// with WriteFolded (flamegraph folded-stacks text) or WritePprof (a pprof
// protobuf `go tool pprof` opens). Pass one in RunOptions.Profiler. Pure
// observation: a profiled run is byte-identical to an unprofiled one.
type Profiler = prof.Profiler

// NewProfiler returns an empty simulated-time profiler.
func NewProfiler() *Profiler { return prof.New() }

// ProfileConfig is one (mode, GPU class) cell of the profiling matrix.
type ProfileConfig = harness.ProfileConfig

// ProfileMatrix lists the configurations Profile attributes — the same
// matrix `bctool bench` measures.
func ProfileMatrix() []ProfileConfig { return harness.ProfileMatrix() }

// Profile runs the workload across the profiling matrix with per-job
// profilers attached and returns the merged simulated-time profile. The
// merge is a commutative per-stack sum, so the output is byte-identical at
// any Exec.Jobs setting.
func Profile(ctx context.Context, ex Exec, p Params, workloadName string) (*Profiler, error) {
	return harness.Profile(ctx, ex.toHarness(), p, workloadName)
}

// ProfileRun profiles a single (mode, class, workload) simulation.
func ProfileRun(ctx context.Context, mode Mode, class GPUClass, p Params, workloadName string) (*Profiler, error) {
	return harness.ProfileRun(ctx, mode, class, p, workloadName)
}

// The experiment-execution layer (internal/exp): every figure, table and
// probe sweep decomposes into independent jobs over fresh Systems, runs on
// a bounded worker pool, and collects results in submission order — so
// parallel artifacts are byte-identical to serial ones.

// JobResult is one finished experiment job, as delivered to Exec.Progress.
type JobResult struct {
	// Index is the job's position in the sweep's submission order.
	Index int
	// Name labels the job (e.g. "fig4/high/BC-BCC/bfs").
	Name string
	// Err is the job's failure, nil on success.
	Err error
	// Elapsed is the host wall-clock time the job took.
	Elapsed time.Duration
}

// Exec configures sweep execution: Jobs workers (0 = GOMAXPROCS, 1 =
// serial), an optional per-job Timeout, an optional Progress callback, and
// an optional TraceSet collecting per-job timelines.
type Exec struct {
	// Jobs bounds concurrent simulations: 0 = GOMAXPROCS, 1 = serial.
	Jobs int
	// Timeout, when positive, bounds each simulation.
	Timeout time.Duration
	// Progress, when non-nil, receives each finished job in completion
	// order (calls are serialized).
	Progress func(JobResult)
	// Trace, when non-nil, collects one Chrome-trace timeline per job of
	// the sweep (open the written file in Perfetto). Pure observation:
	// rendered artifacts are byte-identical with it on.
	Trace *TraceSet
	// Shards, when positive, executes every simulation of the sweep on
	// the sharded conservative-parallel engine with that many worker
	// goroutines (see RunOptions.Shards). Execution machinery only:
	// artifacts are byte-identical at any setting.
	Shards int
}

// toHarness converts the facade Exec to the internal execution config.
func (e Exec) toHarness() harness.Exec {
	hx := harness.Exec{Jobs: e.Jobs, Timeout: e.Timeout, Trace: e.Trace, Shards: e.Shards}
	if e.Progress != nil {
		progress := e.Progress
		hx.Progress = func(r exp.Result) {
			progress(JobResult{Index: r.Index, Name: r.Name, Err: r.Err, Elapsed: r.Elapsed})
		}
	}
	return hx
}

// Figure4, Figure5, Figure6 and Figure7 regenerate the paper's evaluation
// figures on the parallel execution layer; each result renders itself as a
// text table and carries the sweep's merged metrics snapshot in its Stats
// field. The context cancels or times out the whole sweep; Exec bounds
// parallelism and reports progress (the zero Exec uses all cores).

// Figure4 reproduces paper Figure 4 (runtime by configuration) for one GPU
// class across all workloads.
func Figure4(ctx context.Context, ex Exec, class GPUClass, p Params) (harness.Figure4Result, error) {
	return harness.Figure4(ctx, ex.toHarness(), class, p)
}

// Figure5 reproduces paper Figure 5 (border requests per cycle).
func Figure5(ctx context.Context, ex Exec, p Params) (harness.Figure5Result, error) {
	return harness.Figure5(ctx, ex.toHarness(), p)
}

// Figure6 reproduces paper Figure 6 (BCC miss ratio vs geometry).
func Figure6(ctx context.Context, ex Exec, p Params) (harness.Figure6Result, error) {
	return harness.Figure6(ctx, ex.toHarness(), p)
}

// Figure7 reproduces paper Figure 7 (downgrade-rate sensitivity).
func Figure7(ctx context.Context, ex Exec, p Params) (harness.Figure7Result, error) {
	return harness.Figure7(ctx, ex.toHarness(), p)
}

// FigureBorders compares the registered border designs: the Figure 4
// BC-BCC sweep repeated once per design (flat, range, sparta) for one GPU
// class, with the ATS-only baseline. Every design enforces identical
// decisions (DESIGN.md §14); the figure isolates what each costs.
func FigureBorders(ctx context.Context, ex Exec, class GPUClass, p Params) (harness.FigureBordersResult, error) {
	return harness.FigureBorders(ctx, ex.toHarness(), class, p)
}

// RenderTable1, RenderTable2 and RenderTable3 regenerate the paper's
// tables.
var (
	RenderTable1 = harness.RenderTable1
	RenderTable2 = harness.RenderTable2
	RenderTable3 = harness.RenderTable3
)

// SecurityMatrix probes every configuration with the paper's §2.1 threat
// vectors (wild reads/writes, stale-TLB writes, late writebacks) and
// RenderSecurityMatrix prints the BLOCKED/VULNERABLE table.
func SecurityMatrix(ctx context.Context, ex Exec, p Params) ([]harness.SecurityResult, error) {
	return harness.SecurityMatrix(ctx, ex.toHarness(), p)
}

// RenderSecurityMatrix prints the BLOCKED/VULNERABLE table.
var RenderSecurityMatrix = harness.RenderSecurityMatrix

// AdversaryReport is one seeded attack run's outcome set; see
// RunAdversary.
type AdversaryReport = adversary.Report

// RunAdversary runs seeded sandbox-escape campaigns: malicious-accelerator
// attacks (stale-TLB replay, ignored flushes, in-flight DMA races,
// out-of-bounds probes, cross-ASID replay, fabricated writebacks) against
// freshly assembled Border Control systems, with a shadow-memory oracle
// auditing every border crossing. Campaign i uses seed+i and rotates the
// protocol variant (BCC on/off, selective vs full flush). attacks may be
// nil for the full vocabulary. The report is deterministic: the same seed
// renders byte-identically.
func RunAdversary(ctx context.Context, ex Exec, p Params, seed int64, campaigns int, attacks []string) (AdversaryReport, error) {
	return harness.AdversaryReport(ctx, ex.toHarness(), p, seed, campaigns, attacks)
}

// RenderAdversaryReport prints the campaign report, including a single
// reproducing seed per failing attack.
var RenderAdversaryReport = adversary.Render

// AdversaryAttacks lists the attack vocabulary in report order.
var AdversaryAttacks = adversary.AttackNames

// Config configures a full evaluation sweep (RunAll).
type Config struct {
	// Params is the simulated-system configuration; the zero value means
	// DefaultParams(). Any other value must pass Params.Validate.
	Params Params
	// Exec controls parallelism, per-job timeouts, progress reporting and
	// tracing.
	Exec Exec
}

// Artifact is one rendered evaluation artifact: its text, the wall-clock
// time it took to regenerate, and (for the simulation-backed artifacts)
// the merged metrics snapshot of the runs behind it.
type Artifact struct {
	Name    string
	Text    string
	Elapsed time.Duration
	// Stats aggregates the metrics snapshots of the simulations behind
	// this artifact (empty for the static tables and the security matrix).
	Stats Snapshot
}

// RunAll regenerates every evaluation artifact — the three tables, the
// four figures (Figure 4 for both GPU classes) and the security matrix —
// on the parallel execution layer, returning them in the paper's order.
// It fails on the first failed job (in submission order), so any broken
// simulation yields a non-nil error and nil artifacts rather than a
// silently partial sweep.
func RunAll(ctx context.Context, cfg Config) ([]Artifact, error) {
	p := cfg.Params.Normalize()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("bordercontrol: %w", err)
	}
	ex := cfg.Exec
	steps := []struct {
		name string
		gen  func() (string, Snapshot, error)
	}{
		{"table1", func() (string, Snapshot, error) { return RenderTable1() + "\n", Snapshot{}, nil }},
		{"table2", func() (string, Snapshot, error) { return RenderTable2() + "\n", Snapshot{}, nil }},
		{"table3", func() (string, Snapshot, error) { return RenderTable3(p) + "\n", Snapshot{}, nil }},
		{"fig4", func() (string, Snapshot, error) {
			var text string
			var snaps []Snapshot
			for _, class := range []GPUClass{HighlyThreaded, ModeratelyThreaded} {
				res, err := Figure4(ctx, ex, class, p)
				if err != nil {
					return "", Snapshot{}, err
				}
				text += res.Render() + "\n"
				snaps = append(snaps, res.Stats)
			}
			return text, stats.Merge(snaps...), nil
		}},
		{"fig5", func() (string, Snapshot, error) {
			res, err := Figure5(ctx, ex, p)
			if err != nil {
				return "", Snapshot{}, err
			}
			return res.Render() + "\n", res.Stats, nil
		}},
		{"fig6", func() (string, Snapshot, error) {
			res, err := Figure6(ctx, ex, p)
			if err != nil {
				return "", Snapshot{}, err
			}
			return res.Render() + "\n", res.Stats, nil
		}},
		{"fig7", func() (string, Snapshot, error) {
			res, err := Figure7(ctx, ex, p)
			if err != nil {
				return "", Snapshot{}, err
			}
			return res.Render() + "\n", res.Stats, nil
		}},
		{"security", func() (string, Snapshot, error) {
			res, err := SecurityMatrix(ctx, ex, p)
			if err != nil {
				return "", Snapshot{}, err
			}
			return RenderSecurityMatrix(res), Snapshot{}, nil
		}},
	}
	var out []Artifact
	for _, step := range steps {
		start := time.Now()
		text, snap, err := step.gen()
		if err != nil {
			return nil, fmt.Errorf("bordercontrol: %s: %w", step.name, err)
		}
		out = append(out, Artifact{Name: step.name, Text: text, Elapsed: time.Since(start), Stats: snap})
	}
	return out, nil
}

// The mechanism-level API: the paper's structures, reusable inside any
// simulated memory system.

// ProtectionTable is the flat, physically-indexed permission table (2 bits
// per physical page) living in simulated physical memory.
type ProtectionTable = core.ProtectionTable

// BCC is the Border Control Cache over the Protection Table.
type BCC = core.BCC

// BCCConfig sets BCC geometry (entries, pages per entry).
type BCCConfig = core.BCCConfig

// BorderControl implements the Figure 3 event protocol for one
// accelerator — the paper's flat-table design.
type BorderControl = core.BorderControl

// BorderConfig sets Border Control structures and policies.
type BorderConfig = core.Config

// ProtectionArchitecture is the pluggable border-design contract: the
// Figure 3 lifecycle (process start/complete, lazy translation insertion,
// downgrade handling) plus the per-crossing check. Registered designs —
// selected by Params.Border or `bctool -border` — must enforce identical
// decisions for the same event stream and may differ only in when
// permission state moves and what it costs (DESIGN.md §14).
type ProtectionArchitecture = core.ProtectionArchitecture

// BorderDesigns lists the registered border designs in sorted order
// ("flat" is the paper's Protection Table + BCC design).
func BorderDesigns() []string { return core.Designs() }

// DefaultBorderDesign is the design an empty Params.Border selects.
const DefaultBorderDesign = core.DefaultDesign

// BorderPolicy is a declarative per-ASID admission policy for the "range"
// design: a default action plus ordered first-match-wins rules, compiled
// once at installation (see core.Policy). The zero value admits
// everything, which keeps the design decision-equivalent to flat.
type BorderPolicy = core.Policy

// BorderPolicyRule is one ordered rule of a BorderPolicy.
type BorderPolicyRule = core.PolicyRule

// Policy actions for BorderPolicy rules.
const (
	PolicyAllow    = core.PolicyAllow
	PolicyReadOnly = core.PolicyReadOnly
	PolicyDeny     = core.PolicyDeny
)

// Store is the functional physical-memory backing store.
type Store = memory.Store

// OS is the trusted operating-system model (processes, page tables,
// shootdowns, violation policy).
type OS = hostos.OS

// NewProtectionTable places a Protection Table covering physPages pages at
// base inside the store.
func NewProtectionTable(store *Store, base uint64, physPages uint64) (*ProtectionTable, error) {
	return core.NewProtectionTable(store, phys(base), physPages)
}

// NewBCC builds a Border Control Cache.
func NewBCC(cfg BCCConfig) (*BCC, error) { return core.NewBCC(cfg) }

// NewStore allocates a functional physical memory of the given byte size.
func NewStore(size uint64) (*Store, error) { return memory.NewStore(size) }

// NewOS builds a trusted OS model owning the store.
func NewOS(store *Store) *OS { return hostos.New(store) }

// ProtectionTableBytes returns the table footprint for a physical memory of
// the given page count — 0.006% of physical memory (1 MB per 16 GB).
func ProtectionTableBytes(physPages uint64) uint64 { return core.TableBytes(physPages) }

// Time is a simulation timestamp in picoseconds.
type Time = sim.Time

// Phys is a host physical address.
type Phys = arch.Phys

func phys(a uint64) Phys { return Phys(a) }

// Trojan models a malicious accelerator with direct physical-address access
// — the paper's threat vector. Attach it to a system's border port and try
// arbitrary reads and writes; under Border Control they are blocked and
// reported to the OS.
type Trojan = accel.Trojan

// NewTrojan attaches a malicious accelerator to the system's border.
func NewTrojan(sys *System) *Trojan { return accel.NewTrojan(sys.Port) }

// Perm is a page access-permission set.
type Perm = arch.Perm

// Permission bits.
const (
	PermRead  = arch.PermRead
	PermWrite = arch.PermWrite
	PermRW    = arch.PermRW
)

// Virt is a process virtual address.
type Virt = arch.Virt

// Process is one simulated address space managed by the OS model.
type Process = hostos.Process

// Virtualization support (paper §3.4.2).

// VMM is a minimal trusted virtual-machine monitor: it partitions host
// physical memory into guest regions and keeps Protection Tables in
// VMM-private memory no guest can name.
type VMM = hostos.VMM

// Guest is one guest OS and its host-physical partition.
type Guest = hostos.Guest

// NewVMM builds a VMM over the store, reserving the given number of
// frames for the VMM itself.
func NewVMM(store *Store, reserveFrames uint64) (*VMM, error) {
	return hostos.NewVMM(store, reserveFrames)
}

// Alternate permission sources (paper §3.4.1).

// Segment is a physical range with permissions, the unit of a
// Mondriaan-style protection table.
type Segment = core.Segment

// SegmentSource is a Mondriaan-style fine-grained permission table.
type SegmentSource = core.SegmentSource

// PLB is a protection-lookaside buffer whose misses populate Border
// Control's table, mirroring the paper's TLB-miss insertion path.
type PLB = core.PLB

// CapabilityTable is a trusted capability registry whose validated
// invocations populate Border Control's table.
type CapabilityTable = core.CapabilityTable

// NewSegmentSource returns an empty Mondriaan-style permission table.
func NewSegmentSource() *SegmentSource { return core.NewSegmentSource() }

// NewPLB builds a protection-lookaside buffer over the source, feeding bc.
func NewPLB(src *SegmentSource, b *BorderControl, capacity int) (*PLB, error) {
	return core.NewPLB(src, b, capacity)
}

// NewCapabilityTable returns an empty capability registry.
func NewCapabilityTable() *CapabilityTable { return core.NewCapabilityTable() }

// Streaming accelerators (beyond GPUs).

// Streamer is a fixed-function streaming accelerator (crypto, compression,
// video-style IP): cacheless DMA channels whose every block crosses the
// checked border.
type Streamer = accel.Streamer

// StreamJob is one DMA-style transfer processed by a Streamer.
type StreamJob = accel.StreamJob

// StreamerConfig sizes a streaming accelerator.
type StreamerConfig = accel.StreamerConfig

// Trace capture and replay (internal/tracerec, internal/traffic).

// RefTrace is a recorded (or synthetically generated) reference trace: the
// per-wavefront memory-operation streams of a workload plus the replay
// recipe (address-space layout, fault order, post-build image) that
// rebuilds a bit-identical process without re-running the generator.
// Named RefTrace because Trace in this package's vocabulary is the
// timeline tracer (Chrome trace events).
type RefTrace = tracerec.Trace

// TraceFormatError is the typed, fail-closed decode failure of the
// .bctrace codec.
type TraceFormatError = tracerec.FormatError

// TraceResult reports a whole trace execution (every segment in order).
type TraceResult = harness.TraceRunResult

// TrafficConfig selects and seeds a synthetic traffic generator.
type TrafficConfig = traffic.Config

// SweepCell is one cell of a replay sweep grid; SweepRow its result.
type (
	SweepCell = harness.SweepCell
	SweepRow  = harness.SweepRow
)

// RecordTrace executes a workload generator once and captures its
// reference trace and replay recipe.
func RecordTrace(workloadName string, scale int) (*RefTrace, error) {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("bordercontrol: unknown workload %q (have %v)", workloadName, Workloads())
	}
	return tracerec.Record(spec, scale)
}

// GenerateTraffic produces a synthetic trace (TrafficShapes names the
// generators: multi-tenant churn, bursty DMA, inference-style streaming,
// adversarial mix).
func GenerateTraffic(cfg TrafficConfig) (*RefTrace, error) { return traffic.Generate(cfg) }

// TrafficShapes lists the synthetic-traffic generators.
func TrafficShapes() []string { return traffic.Shapes() }

// WriteTraceFile / ReadTraceFile serialize traces in the versioned,
// content-hashed .bctrace format. LoadTrace is ReadTraceFile behind a
// process-wide cache (sweeps decode each recording once).
func WriteTraceFile(path string, t *RefTrace) error { return tracerec.WriteFile(path, t) }

// ReadTraceFile reads and hash-verifies a .bctrace file.
func ReadTraceFile(path string) (*RefTrace, error) { return tracerec.ReadFile(path) }

// LoadTrace is ReadTraceFile behind a process-wide cache.
func LoadTrace(path string) (*RefTrace, error) { return tracerec.Load(path) }

// RunTraceCtx replays every segment of a trace through one simulated
// machine — short-lived processes, adversarial probes and all. Results are
// bit-identical at any RunOptions.Shards setting.
func RunTraceCtx(ctx context.Context, mode Mode, class GPUClass, tr *RefTrace, p Params, opts RunOptions) (TraceResult, error) {
	return harness.RunTraceCtx(ctx, mode, class, tr, p, opts)
}

// RunSweepCtx executes a replay sweep grid on a bounded worker pool; rows
// collect in cell order, so rendered output is byte-identical at any jobs
// setting.
func RunSweepCtx(ctx context.Context, cells []SweepCell, jobs int) ([]SweepRow, error) {
	return harness.RunSweepCtx(ctx, cells, jobs)
}

// RenderSweep and SweepCSV render sweep rows deterministically.
var (
	RenderSweep = harness.RenderSweep
	SweepCSV    = harness.SweepCSV
)

// Sweep-diff regression triage (bctool sweepdiff): compare two sweep CSV
// artifacts or two -stats-json snapshots cell-by-cell under per-metric
// relative-drift thresholds.
type (
	SweepDiffOptions = harness.SweepDiffOptions
	SweepDiff        = harness.SweepDiff
	SweepDrift       = harness.SweepDrift
)

var (
	DiffSweepCSV  = harness.DiffSweepCSV
	DiffStatsJSON = harness.DiffStatsJSON
)

// SweepGrid expands recorded traces against mode/border/class axes into a
// labelled cell grid (bctool sweep's builder).
func SweepGrid(traces map[string]*RefTrace, names []string, modes []Mode, borders []string, classes []GPUClass, base Params, shards int) []SweepCell {
	return harness.RecordedCells(traces, names, modes, borders, classes, base, shards)
}

// ValidateSweepCells checks a grid before anything runs: every cell must
// carry a trace, and labels must be unique (they key the CSV and the
// serve/worker merge). Duplicate labels surface as *DuplicateLabelError.
func ValidateSweepCells(cells []SweepCell) error { return harness.ValidateCells(cells) }

// DuplicateLabelError reports two sweep cells sharing a label.
type DuplicateLabelError = harness.DuplicateLabelError

// ModeSlug and ClassSlug are the canonical wire/label spellings of a mode
// and class (sweep labels, the serve API, the worker protocol); ParseMode
// and ParseClass invert them, accepting the historical CLI aliases
// ("capi", "moderate").
var (
	ModeSlug   = harness.ModeSlug
	ParseMode  = harness.ParseModeSlug
	ClassSlug  = harness.ClassSlug
	ParseClass = harness.ParseClassSlug
)
