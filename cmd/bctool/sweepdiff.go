// `bctool sweepdiff`: regression triage between two sweep artifacts.
// Compares cell-by-cell and metric-by-metric under relative-drift
// thresholds; any out-of-tolerance drift (or a missing cell) prints and
// exits non-zero. The simulator is deterministic, so the default zero
// tolerance is the right baseline: two runs of the same code over the
// same inputs are byte-identical.

package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	bc "bordercontrol"
)

func sweepdiffCmd(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("sweepdiff", flag.ContinueOnError)
	rel := fs.Float64("rel", 0, "default maximum relative drift |new-old|/|old| per metric (0 = exact)")
	tolSpec := fs.String("tol", "", "per-metric overrides, comma-separated metric=frac pairs (e.g. bcc_miss=0.01,chk_p99_ps=0.05)")
	statsMode := fs.Bool("stats", false, "compare two -stats-json snapshots instead of sweep CSVs (histograms compare as count/p50/p99/max)")
	quiet := fs.Bool("quiet", false, "suppress the clean-verdict line (drifts always print)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: bctool sweepdiff [-rel FRAC] [-tol m=f,...] [-stats] OLD NEW")
	}
	opts := bc.SweepDiffOptions{Default: *rel}
	if *tolSpec != "" {
		opts.Tol = map[string]float64{}
		for _, pair := range splitList(*tolSpec) {
			metric, frac, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("sweepdiff: bad -tol entry %q (want metric=frac)", pair)
			}
			v, err := strconv.ParseFloat(frac, 64)
			if err != nil || v < 0 {
				return fmt.Errorf("sweepdiff: bad -tol fraction %q for %s", frac, metric)
			}
			opts.Tol[metric] = v
		}
	}
	oldBlob, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newBlob, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	var d *bc.SweepDiff
	if *statsMode {
		d, err = bc.DiffStatsJSON(oldBlob, newBlob, opts)
	} else {
		d, err = bc.DiffSweepCSV(string(oldBlob), string(newBlob), opts)
	}
	if err != nil {
		return err
	}
	if !d.Clean() || !*quiet {
		fmt.Print(d.Render())
	}
	if !d.Clean() {
		return fmt.Errorf("sweepdiff: %s and %s drifted beyond tolerance", fs.Arg(0), fs.Arg(1))
	}
	return nil
}
