// Command bctool regenerates the evaluation artifacts of "Border Control:
// Sandboxing Accelerators" (MICRO-48, 2015): every table and figure of the
// paper's evaluation section, plus single-run inspection of any workload
// under any safety configuration.
//
// Usage:
//
//	bctool table1|table2|table3        print a paper table
//	bctool fig4|fig5|fig6|fig7         regenerate a paper figure
//	bctool all                         everything above, in order
//	bctool security                    run the threat-model probe matrix
//	bctool run -mode bc-bcc -class high -workload bfs [-downgrades N]
//	bctool list                        list workloads and modes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	bc "bordercontrol"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	var err error
	switch cmd {
	case "table1":
		fmt.Print(bc.RenderTable1())
	case "table2":
		fmt.Print(bc.RenderTable2())
	case "table3":
		fmt.Print(bc.RenderTable3(bc.DefaultParams()))
	case "fig4":
		err = fig4(wantCSV())
	case "fig5":
		err = fig5(wantCSV())
	case "fig6":
		err = fig6(wantCSV())
	case "fig7":
		err = fig7(wantCSV())
	case "all":
		fmt.Print(bc.RenderTable1(), "\n", bc.RenderTable2(), "\n", bc.RenderTable3(bc.DefaultParams()), "\n")
		for _, f := range []func(bool) error{fig4, fig5, fig6, fig7} {
			if err = f(false); err != nil {
				break
			}
		}
	case "security":
		err = security()
	case "run":
		err = runOne(os.Args[2:])
	case "list":
		fmt.Println("workloads:", strings.Join(bc.Workloads(), " "))
		fmt.Println("modes:     ats-only full-iommu capi bc-nobcc bc-bcc")
		fmt.Println("classes:   high moderate")
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bctool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bctool <table1|table2|table3|fig4|fig5|fig6|fig7|security|all|run|list> [csv] [flags]`)
}

// wantCSV reports whether the figure should be emitted as CSV (for
// plotting) instead of a text table.
func wantCSV() bool {
	return len(os.Args) > 2 && os.Args[2] == "csv"
}

func fig4(csv bool) error {
	for _, class := range []bc.GPUClass{bc.HighlyThreaded, bc.ModeratelyThreaded} {
		res, err := bc.Figure4(class, bc.DefaultParams())
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Render())
		}
	}
	return nil
}

func fig5(csv bool) error {
	res, err := bc.Figure5(bc.DefaultParams())
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(res.CSV())
	} else {
		fmt.Println(res.Render())
	}
	return nil
}

func fig6(csv bool) error {
	res, err := bc.Figure6(bc.DefaultParams())
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(res.CSV())
	} else {
		fmt.Println(res.Render())
	}
	return nil
}

func fig7(csv bool) error {
	res, err := bc.Figure7(bc.DefaultParams())
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(res.CSV())
	} else {
		fmt.Println(res.Render())
	}
	return nil
}

func security() error {
	results, err := bc.SecurityMatrix(bc.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Print(bc.RenderSecurityMatrix(results))
	return nil
}

func parseMode(s string) (bc.Mode, error) {
	switch s {
	case "ats-only":
		return bc.ATSOnly, nil
	case "full-iommu":
		return bc.FullIOMMU, nil
	case "capi":
		return bc.CAPILike, nil
	case "bc-nobcc":
		return bc.BCNoBCC, nil
	case "bc-bcc":
		return bc.BCBCC, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func runOne(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	mode := fs.String("mode", "bc-bcc", "safety configuration (see bctool list)")
	class := fs.String("class", "high", "GPU class: high or moderate")
	name := fs.String("workload", "bfs", "workload name")
	downgrades := fs.Float64("downgrades", 0, "permission downgrades per second to inject")
	scale := fs.Int("scale", 1, "workload problem-size multiplier")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	cl := bc.HighlyThreaded
	if strings.HasPrefix(*class, "mod") {
		cl = bc.ModeratelyThreaded
	}
	p := bc.DefaultParams()
	p.Scale = *scale
	res, err := bc.Run(m, cl, *name, p, bc.RunOptions{DowngradesPerSec: *downgrades})
	if err != nil {
		return err
	}
	fmt.Printf("workload      %s\n", res.Workload)
	fmt.Printf("mode          %v\n", res.Mode)
	fmt.Printf("class         %v\n", res.Class)
	fmt.Printf("GPU cycles    %d\n", res.Cycles)
	fmt.Printf("runtime       %.3f ms\n", float64(res.Runtime)/1e9)
	fmt.Printf("memory ops    %d\n", res.Ops)
	fmt.Printf("DRAM util     %.1f%%\n", res.DRAMUtilization*100)
	if res.L1MissRatio > 0 || res.L2MissRatio > 0 {
		fmt.Printf("L1 miss       %.3f\n", res.L1MissRatio)
		fmt.Printf("L2 miss       %.3f\n", res.L2MissRatio)
		fmt.Printf("L1 TLB miss   %.4f\n", res.TLBMissRatio)
	}
	fmt.Printf("translations  %d (%d page walks)\n", res.Translations, res.PageWalks)
	if m == bc.BCNoBCC || m == bc.BCBCC {
		fmt.Printf("BC checks     %d (%.3f/cycle)\n", res.BCChecks, res.RequestsPerCycle())
		fmt.Printf("BCC miss      %.4f\n", res.BCCMissRatio)
	}
	if res.Downgrades > 0 {
		fmt.Printf("downgrades    %d\n", res.Downgrades)
	}
	if res.VerifyErr != nil {
		return fmt.Errorf("results INCORRECT: %w", res.VerifyErr)
	}
	fmt.Println("results       verified correct")
	return nil
}
