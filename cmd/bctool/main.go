// Command bctool regenerates the evaluation artifacts of "Border Control:
// Sandboxing Accelerators" (MICRO-48, 2015): every table and figure of the
// paper's evaluation section, plus single-run inspection of any workload
// under any safety configuration.
//
// Sweeps run on the parallel experiment-execution layer: independent
// simulations spread over all cores (bounded by -jobs) with results
// collected in submission order, so the output is byte-identical at any
// parallelism. Progress lines go to stderr; artifacts go to stdout.
//
// Usage:
//
//	bctool table1|table2|table3            print a paper table
//	bctool fig4|fig5|fig6|fig7 [csv]       regenerate a paper figure
//	bctool borders [csv]                   compare the registered border
//	                                       designs (flat, range, sparta) on
//	                                       the Figure-4 sweep, both classes
//	bctool all                             everything above + security matrix
//	bctool security                        run the threat-model probe matrix
//	bctool adversary [-seed N] [-campaigns N] [-attacks a,b]
//	                                       seeded sandbox-escape campaigns
//	                                       with the shadow-memory oracle
//	bctool run -mode bc-bcc -class high -workload bfs [-downgrades N]
//	bctool record -workload bfs|all | -traffic churn [-seed N] [-o DIR]
//	                                       capture reference traces (workload
//	                                       generators or synthetic traffic)
//	                                       as versioned .bctrace files
//	bctool replay [run flags] FILE.bctrace re-run a recording through any
//	                                       mode/border/class/shards cell; a
//	                                       workload recording prints stdout
//	                                       byte-identical to `bctool run`
//	bctool sweep [-traffic all] [-seeds N] [-traces f,..] [-modes ..]
//	       [-borders ..] [-classes both]   replay a grid of traces across
//	                                       mode/border/class cells with
//	                                       border-check latency tails
//	                                       (p50/p99/p999) per cell
//	bctool fleet [-tenants N] [-shards N] [-workload W] [-churn-ps N]
//	                                       many tenant sandboxes on one
//	                                       sharded conservative-parallel
//	                                       simulation (host shard + one
//	                                       shard per tenant)
//	bctool serve [-addr HOST:PORT] [-workers N] [-jobs N] [-queue N]
//	                                       run the experiment service: an
//	                                       HTTP job queue with an artifact
//	                                       cache; sweep grids fan out over
//	                                       `bctool worker` subprocesses with
//	                                       byte-identical artifacts at any
//	                                       worker count
//	bctool submit [-addr URL] [-wait D] run|sweep|adversary|fleet [flags]
//	                                       submit a job to a running service,
//	                                       stream its progress to stderr and
//	                                       print the artifact to stdout
//	bctool top [-addr URL] [-interval D] [-once|-raw|-require a,b]
//	                                       live dashboard over a running
//	                                       service: jobs table, queue/cache
//	                                       gauges, per-job activity from the
//	                                       /v1/watch firehose; -require
//	                                       asserts metric families exist and
//	                                       /v1/metrics parses
//	bctool sweepdiff [-rel F] [-tol m=f,..] [-stats] OLD NEW
//	                                       compare two sweep CSV (or two
//	                                       -stats-json) artifacts cell-by-
//	                                       cell under relative-drift
//	                                       thresholds; exits non-zero on any
//	                                       drift or missing cell
//	bctool worker                          internal: sweep-cell executor
//	                                       spawned by serve (cells on stdin,
//	                                       rows on stdout)
//	bctool profile [-folded FILE] [-pprof FILE]
//	                                       simulated-time profile of the
//	                                       bench matrix (folded stacks or a
//	                                       pprof protobuf for `go tool pprof`)
//	bctool bench [-json|-compare FILE]     host-side self-measurement
//	bctool tracecheck [-stats] FILE        validate a Chrome trace file, or
//	                                       a -stats-json document's schema
//	bctool list                            list workloads and modes
//
// Figure, security and all accept -jobs N (0 = all cores, 1 = serial),
// -timeout D (per simulation) and -quiet (suppress progress lines). Any
// failed job makes bctool exit non-zero.
//
// run, figures, adversary and bench accept -border NAME, selecting the
// protection architecture the BC modes use (`bctool list` names them; the
// default is the paper's flat Protection Table). `bctool borders` sweeps
// every registered design regardless.
//
// Figures, run, adversary and fleet also accept -shards N, which executes
// each simulation on the sharded conservative-parallel engine with N
// worker goroutines. Sharding is execution machinery, not model input:
// every artifact is byte-identical between -shards=1 and -shards=4 (and
// the direct engine). Fleets are where extra workers buy wall-clock time;
// single-accelerator runs are one determinism domain and use it as a
// residue-freedom proof.
//
// Observability (run, figures and all):
//
//	-stats-json FILE   write the sweep's merged metrics snapshot as JSON
//	-hist              print the latency histograms (count/p50/p90/p99/max
//	                   in simulated picoseconds) to stderr
//	-trace FILE        record a Chrome trace (open in Perfetto)
//	-trace-cats LIST   trace categories (default "engine,gpu,border"; a
//	                   parent enables its children, so border includes the
//	                   per-check border.check events)
//	-metrics           print the metrics snapshot to stderr
//
// adversary additionally accepts -stats-json and -metrics to surface the
// campaign's aggregate counters (attacks run, crossings audited, oracle
// assertions, breaches); its report text is unchanged by those flags.
//
// Everything here is pure observation of a deterministic simulator: with
// the flags off, every artifact is byte-identical to a run without them,
// and profiles/histograms themselves are byte-identical across runs and
// across -jobs settings.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	bc "bordercontrol"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		fmt.Print(bc.RenderTable1())
	case "table2":
		fmt.Print(bc.RenderTable2())
	case "table3":
		fmt.Print(bc.RenderTable3(bc.DefaultParams()))
	case "fig4", "fig5", "fig6", "fig7", "borders", "security":
		err = sweep(ctx, cmd, args)
	case "adversary":
		err = adversaryCmd(ctx, args)
	case "all":
		err = all(ctx, args)
	case "run":
		err = runOne(ctx, args, false)
	case "record":
		err = recordCmd(args)
	case "replay":
		err = runOne(ctx, args, true)
	case "sweep":
		err = sweepReplay(ctx, args)
	case "fleet":
		err = fleetCmd(ctx, args)
	case "serve":
		err = serveCmd(ctx, args)
	case "worker":
		err = workerCmd(ctx)
	case "submit":
		err = submitCmd(ctx, args)
	case "top":
		err = topCmd(ctx, args)
	case "sweepdiff":
		err = sweepdiffCmd(ctx, args)
	case "profile":
		err = profileCmd(ctx, args)
	case "bench":
		err = bench(ctx, args)
	case "tracecheck":
		err = traceCheck(args)
	case "list":
		fmt.Println("workloads:", strings.Join(bc.Workloads(), " "))
		fmt.Println("modes:     ats-only full-iommu capi bc-nobcc bc-bcc")
		fmt.Println("classes:   high moderate")
		fmt.Println("borders:  ", strings.Join(bc.BorderDesigns(), " "))
		fmt.Println("traffic:  ", strings.Join(bc.TrafficShapes(), " "))
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		// A SIGINT/SIGTERM arrives as context cancellation; report it as an
		// interruption (exit 130, the shell convention) rather than a
		// failure of the tool itself.
		if ctx.Err() != nil && errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "bctool: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "bctool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bctool <table1|table2|table3|fig4|fig5|fig6|fig7|borders|security|adversary|all|run|record|replay|sweep|fleet|serve|worker|submit|top|sweepdiff|profile|bench|tracecheck|list> [csv]
	[-border NAME] [-jobs N] [-shards N] [-timeout D] [-quiet] [-stats-json FILE] [-hist] [-trace FILE] [-trace-cats LIST] [-metrics]
	serve:     run the experiment service (-addr, -workers, -jobs, -queue, -cache-size, -watch-buffer, -log-level)
	submit:    send a job to a running service and stream it (-addr, -wait, -ping, then run|sweep|adversary|fleet + flags)
	top:       live dashboard over a running service (-addr, -interval, -once, -raw, -require FAMILIES)
	sweepdiff: compare two sweep CSV/stats artifacts (-rel FRAC, -tol m=f,.., -stats OLD NEW); non-zero exit on drift
	worker:    internal — sweep-cell executor spawned by serve`)
}

// obsFlags are the observability knobs shared by run and the sweeps.
type obsFlags struct {
	statsJSON string
	tracePath string
	traceCats string
	metrics   bool
	hist      bool
}

func (o *obsFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&o.statsJSON, "stats-json", "", "write the metrics snapshot as JSON to this file (- = stdout)")
	fs.StringVar(&o.tracePath, "trace", "", "record a Chrome trace-event file (open in Perfetto)")
	fs.StringVar(&o.traceCats, "trace-cats", "engine,gpu,border",
		"comma-separated trace categories; a parent enables its children (border includes border.check)")
	fs.BoolVar(&o.metrics, "metrics", false, "print the metrics snapshot to stderr")
	fs.BoolVar(&o.hist, "hist", false, "print the latency histograms (simulated ps) to stderr")
}

// emitStats writes/prints the snapshot per the -stats-json, -metrics and
// -hist flags.
func (o *obsFlags) emitStats(snap bc.Snapshot) error {
	if o.metrics {
		fmt.Fprint(os.Stderr, snap.String())
	}
	if o.hist {
		printHistograms(snap)
	}
	if o.statsJSON == "" {
		return nil
	}
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if o.statsJSON == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(o.statsJSON, blob, 0o644)
}

// printHistograms renders every histogram sample of the snapshot as a
// percentile table on stderr. Latencies are simulated picoseconds;
// engine.queue_depth is an event count.
func printHistograms(snap bc.Snapshot) {
	fmt.Fprintf(os.Stderr, "%-36s %10s %10s %10s %10s %10s\n",
		"histogram", "count", "p50", "p90", "p99", "max")
	for _, smp := range snap.Samples {
		if smp.Kind != bc.KindHistogram {
			continue
		}
		h := smp.Hist
		fmt.Fprintf(os.Stderr, "%-36s %10d %10d %10d %10d %10d\n",
			smp.Name, h.Count, h.Percentile(50), h.Percentile(90), h.Percentile(99), h.Max)
	}
}

// writeTrace writes any recorded trace to -trace.
func writeTrace(path string, w interface{ WriteJSON(io.Writer) error }) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := w.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace written to %s\n", path)
	return nil
}

// execFlags are the execution-layer knobs shared by every sweep command.
type execFlags struct {
	jobs    int
	shards  int
	timeout time.Duration
	quiet   bool
	csv     bool
	border  string
	obs     obsFlags
}

// parseExec parses sweep flags; a leading "csv" operand is accepted for
// backward compatibility with `bctool fig4 csv`.
func parseExec(name string, args []string) (execFlags, error) {
	var f execFlags
	if len(args) > 0 && args[0] == "csv" {
		f.csv = true
		args = args[1:]
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.IntVar(&f.jobs, "jobs", 0, "concurrent simulations (0 = all cores, 1 = serial)")
	fs.IntVar(&f.shards, "shards", 0, "run each simulation on the sharded engine with this many workers (0 = direct engine); artifacts are byte-identical at any setting")
	fs.DurationVar(&f.timeout, "timeout", 0, "per-simulation timeout (0 = none)")
	fs.BoolVar(&f.quiet, "quiet", false, "suppress per-job progress lines on stderr")
	fs.BoolVar(&f.csv, "csv", f.csv, "emit CSV instead of a text table")
	fs.StringVar(&f.border, "border", "", "border design for the BC modes (see bctool list; default "+bc.DefaultBorderDesign+"); borders sweeps every design regardless")
	f.obs.register(fs)
	err := fs.Parse(args)
	return f, err
}

// workers reports the effective worker count for the summary line.
func (f execFlags) workers() int {
	if f.jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return f.jobs
}

// tracker accumulates per-job statistics and prints progress to stderr.
type tracker struct {
	quiet  bool
	jobs   int
	failed int
	busy   time.Duration // summed per-job wall-clock across all workers
}

func (t *tracker) done(r bc.JobResult) {
	t.jobs++
	t.busy += r.Elapsed
	status := "ok"
	if r.Err != nil {
		t.failed++
		status = "FAILED: " + r.Err.Error()
	}
	if !t.quiet {
		fmt.Fprintf(os.Stderr, "%-44s %9s  %s\n", r.Name, fmtDur(r.Elapsed), status)
	}
}

func (f execFlags) exec(t *tracker) bc.Exec {
	t.quiet = f.quiet
	ex := bc.Exec{Jobs: f.jobs, Timeout: f.timeout, Progress: t.done, Shards: f.shards}
	if f.obs.tracePath != "" {
		ex.Trace = bc.NewTraceSet(f.obs.traceCats)
	}
	return ex
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// finishObs emits the sweep's stats and trace after the artifact printed.
func (f execFlags) finishObs(ex bc.Exec, snap bc.Snapshot) error {
	if err := f.obs.emitStats(snap); err != nil {
		return err
	}
	if ex.Trace != nil {
		return writeTrace(f.obs.tracePath, ex.Trace)
	}
	return nil
}

// sweep runs one figure or the security matrix on the execution layer.
func sweep(ctx context.Context, cmd string, args []string) error {
	f, err := parseExec(cmd, args)
	if err != nil {
		return err
	}
	var t tracker
	ex := f.exec(&t)
	p := bc.DefaultParams()
	if f.border != "" {
		p.Border = f.border
	}
	var snap bc.Snapshot
	switch cmd {
	case "fig4":
		var snaps []bc.Snapshot
		for _, class := range []bc.GPUClass{bc.HighlyThreaded, bc.ModeratelyThreaded} {
			res, err := bc.Figure4(ctx, ex, class, p)
			if err != nil {
				return err
			}
			snaps = append(snaps, res.Stats)
			if f.csv {
				fmt.Print(res.CSV())
			} else {
				fmt.Println(res.Render())
			}
		}
		snap = bc.MergeSnapshots(snaps...)
	case "fig5":
		res, err := bc.Figure5(ctx, ex, p)
		if err != nil {
			return err
		}
		snap = res.Stats
		if f.csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Render())
		}
	case "fig6":
		res, err := bc.Figure6(ctx, ex, p)
		if err != nil {
			return err
		}
		snap = res.Stats
		if f.csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Render())
		}
	case "fig7":
		res, err := bc.Figure7(ctx, ex, p)
		if err != nil {
			return err
		}
		snap = res.Stats
		if f.csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Render())
		}
	case "borders":
		var snaps []bc.Snapshot
		for _, class := range []bc.GPUClass{bc.HighlyThreaded, bc.ModeratelyThreaded} {
			res, err := bc.FigureBorders(ctx, ex, class, p)
			if err != nil {
				return err
			}
			snaps = append(snaps, res.Stats)
			if f.csv {
				fmt.Print(res.CSV())
			} else {
				fmt.Println(res.Render())
			}
		}
		snap = bc.MergeSnapshots(snaps...)
	case "security":
		results, err := bc.SecurityMatrix(ctx, ex, p)
		if err != nil {
			return err
		}
		fmt.Print(bc.RenderSecurityMatrix(results))
	}
	return f.finishObs(ex, snap)
}

// adversaryCmd runs the seeded sandbox-escape campaigns. The report is a
// pure function of -seed/-campaigns/-attacks: the same flags render
// byte-identically at any parallelism. A breached invariant exits non-zero
// after printing one reproducing command per failing attack.
func adversaryCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("adversary", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "base campaign seed (campaign i uses seed+i)")
	campaigns := fs.Int("campaigns", 4, "number of campaigns (each rotates the protocol variant)")
	attacks := fs.String("attacks", "", "comma-separated attack names (empty = all: "+strings.Join(bc.AdversaryAttacks(), ",")+")")
	border := fs.String("border", "", "border design under attack (see bctool list; default "+bc.DefaultBorderDesign+")")
	jobs := fs.Int("jobs", 0, "concurrent attack runs (0 = all cores, 1 = serial)")
	shards := fs.Int("shards", 0, "assemble each campaign system on the sharded engine (0 = direct engine); reports are byte-identical either way")
	timeout := fs.Duration("timeout", 0, "per-run timeout (0 = none)")
	quiet := fs.Bool("quiet", false, "suppress per-run progress lines on stderr")
	statsJSON := fs.String("stats-json", "", "write the campaign's aggregate counters as JSON to this file (- = stdout)")
	metrics := fs.Bool("metrics", false, "print the campaign's aggregate counters to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var names []string
	if *attacks != "" {
		for _, a := range strings.Split(*attacks, ",") {
			if a = strings.TrimSpace(a); a != "" {
				names = append(names, a)
			}
		}
	}
	var t tracker
	t.quiet = *quiet
	ex := bc.Exec{Jobs: *jobs, Timeout: *timeout, Progress: t.done, Shards: *shards}
	p := bc.DefaultParams()
	if *border != "" {
		p.Border = *border
	}
	rep, err := bc.RunAdversary(ctx, ex, p, *seed, *campaigns, names)
	if err != nil {
		return err
	}
	fmt.Print(bc.RenderAdversaryReport(rep))
	obs := obsFlags{statsJSON: *statsJSON, metrics: *metrics}
	if err := obs.emitStats(rep.Stats()); err != nil {
		return err
	}
	if rep.Failed() {
		return fmt.Errorf("sandbox breached — see the reproducing seeds above")
	}
	return nil
}

// all regenerates every artifact and prints a per-artifact wall-clock and
// effective-parallelism summary to stderr.
func all(ctx context.Context, args []string) error {
	f, err := parseExec("all", args)
	if err != nil {
		return err
	}
	var t tracker
	ex := f.exec(&t)
	start := time.Now()
	artifacts, err := bc.RunAll(ctx, bc.Config{Exec: ex})
	if err != nil {
		return err
	}
	wall := time.Since(start)
	var snaps []bc.Snapshot
	for _, a := range artifacts {
		fmt.Print(a.Text)
		snaps = append(snaps, a.Stats)
	}

	fmt.Fprintf(os.Stderr, "\n%-10s %10s\n", "artifact", "wall")
	for _, a := range artifacts {
		fmt.Fprintf(os.Stderr, "%-10s %10s\n", a.Name, fmtDur(a.Elapsed))
	}
	parallelism := 0.0
	if wall > 0 {
		parallelism = float64(t.busy) / float64(wall)
	}
	fmt.Fprintf(os.Stderr, "\n%d simulations in %s wall (%s of simulation time, %d workers): effective parallelism %.2fx\n",
		t.jobs, fmtDur(wall), fmtDur(t.busy), f.workers(), parallelism)
	if t.failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", t.failed, t.jobs)
	}
	return f.finishObs(ex, bc.MergeSnapshots(snaps...))
}

func parseMode(s string) (bc.Mode, error) {
	return bc.ParseMode(s)
}

// runOne executes one workload (`bctool run`) or replays one recording
// (`bctool replay [flags] FILE`). The two share every flag and every line
// of output: replaying a workload's recording prints byte-identical stdout
// to running the workload live — `make replay-smoke` diffs exactly that.
// Replaying a multi-segment or probed recording (synthetic traffic) prints
// the trace-run report instead.
func runOne(ctx context.Context, args []string, replay bool) error {
	cmdName := "run"
	if replay {
		cmdName = "replay"
	}
	fs := flag.NewFlagSet(cmdName, flag.ContinueOnError)
	mode := fs.String("mode", "bc-bcc", "safety configuration (see bctool list)")
	class := fs.String("class", "high", "GPU class: high or moderate")
	name := fs.String("workload", "bfs", "workload name")
	border := fs.String("border", "", "border design for the BC modes (see bctool list; default "+bc.DefaultBorderDesign+")")
	downgrades := fs.Float64("downgrades", 0, "permission downgrades per second to inject")
	scale := fs.Int("scale", 1, "workload problem-size multiplier")
	shards := fs.Int("shards", 0, "run on the sharded engine with this many workers (0 = direct engine); results are bit-identical either way")
	timeout := fs.Duration("timeout", 0, "abort the simulation after this long (0 = none)")
	var obs obsFlags
	obs.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	cl := bc.HighlyThreaded
	if strings.HasPrefix(*class, "mod") {
		cl = bc.ModeratelyThreaded
	}
	p := bc.DefaultParams()
	p.Scale = *scale
	if *border != "" {
		p.Border = *border
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := bc.RunOptions{DowngradesPerSec: *downgrades, Shards: *shards}
	var tr *bc.Tracer
	if obs.tracePath != "" {
		tr = bc.NewTracer(obs.traceCats)
		opts.Tracer = tr
	}
	if replay {
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: bctool replay [flags] FILE.bctrace")
		}
		path := fs.Arg(0)
		rec, err := bc.LoadTrace(path)
		if err != nil {
			return err
		}
		// A single benign segment of a known workload replays through the
		// exact same path (and printer) as `bctool run`; anything else —
		// multi-tenant churn, probed mixes — goes through the trace runner.
		single := len(rec.Segments) == 1 && len(rec.Segments[0].Probes) == 0
		if !single || !knownWorkload(rec.Workload) {
			return replayTraceRun(ctx, m, cl, rec, p, opts, obs)
		}
		p.Trace = path
		*name = rec.Workload
	}
	res, err := bc.RunCtx(ctx, m, cl, *name, p, opts)
	if err != nil {
		return err
	}
	fmt.Printf("workload      %s\n", res.Workload)
	fmt.Printf("mode          %v\n", res.Mode)
	fmt.Printf("class         %v\n", res.Class)
	fmt.Printf("GPU cycles    %d\n", res.Cycles)
	fmt.Printf("runtime       %.3f ms\n", float64(res.Runtime)/1e9)
	fmt.Printf("memory ops    %d\n", res.Ops)
	fmt.Printf("DRAM util     %.1f%%\n", res.DRAMUtilization*100)
	if res.L1MissRatio > 0 || res.L2MissRatio > 0 {
		fmt.Printf("L1 miss       %.3f\n", res.L1MissRatio)
		fmt.Printf("L2 miss       %.3f\n", res.L2MissRatio)
		fmt.Printf("L1 TLB miss   %.4f\n", res.TLBMissRatio)
	}
	fmt.Printf("translations  %d (%d page walks)\n", res.Translations, res.PageWalks)
	if m == bc.BCNoBCC || m == bc.BCBCC {
		fmt.Printf("BC checks     %d (%.3f/cycle)\n", res.BCChecks, res.RequestsPerCycle())
		fmt.Printf("BCC miss      %.4f\n", res.BCCMissRatio)
	}
	if res.Downgrades > 0 {
		fmt.Printf("downgrades    %d\n", res.Downgrades)
	}
	fmt.Fprintf(os.Stderr, "host: %s wall, %d events, %.0f events/sec\n",
		fmtDur(res.Host.Wall), res.Host.Events, res.Host.EventsPerSec)
	if err := obs.emitStats(res.Stats); err != nil {
		return err
	}
	if tr != nil {
		if err := writeTrace(obs.tracePath, tr); err != nil {
			return err
		}
	}
	if res.VerifyErr != nil {
		return fmt.Errorf("results INCORRECT: %w", res.VerifyErr)
	}
	fmt.Println("results       verified correct")
	return nil
}

// fleetCmd runs a fleet: many tenant accelerator sandboxes on one sharded
// conservative-parallel simulation, coordinated by a host shard whose
// launch doorbells, completion interrupts and downgrade commands are the
// cross-shard border messages. The printed report is byte-identical at any
// -shards setting; the host line on stderr is the only wall-clock output.
func fleetCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	def := bc.DefaultFleetParams()
	tenants := fs.Int("tenants", def.Tenants, "tenant accelerator sandboxes (one shard each, plus the host shard)")
	mode := fs.String("mode", "bc-bcc", "safety configuration every tenant runs under (see bctool list)")
	class := fs.String("class", "moderate", "GPU class: high or moderate")
	name := fs.String("workload", "pathfinder", "workload every tenant runs")
	shards := fs.Int("shards", 0, "worker goroutines executing shards (0 = all cores, 1 = serial); the report is byte-identical at any setting")
	lookahead := fs.Int64("lookahead-ps", int64(def.Lookahead), "host<->accelerator crossing latency in simulated ps (the conservative window)")
	spread := fs.Int64("spread-ps", int64(def.LaunchSpread), "stagger tenant launches over this much simulated ps (seeded)")
	churn := fs.Int64("churn-ps", int64(def.DowngradeEvery), "host downgrade-command cadence in simulated ps (0 = no churn)")
	seed := fs.Int64("seed", def.Seed, "seed for launch jitter and churn targeting")
	scale := fs.Int("scale", 1, "workload problem-size multiplier")
	timeout := fs.Duration("timeout", 0, "abort the fleet after this long (0 = none)")
	var obs obsFlags
	obs.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	cl := bc.HighlyThreaded
	if strings.HasPrefix(*class, "mod") {
		cl = bc.ModeratelyThreaded
	}
	p := bc.DefaultParams()
	p.Scale = *scale
	fp := bc.FleetParams{
		Tenants:        *tenants,
		Mode:           m,
		Class:          cl,
		Lookahead:      bc.Time(*lookahead),
		LaunchSpread:   bc.Time(*spread),
		DowngradeEvery: bc.Time(*churn),
		Seed:           *seed,
		Workers:        *shards,
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := bc.RunFleetCtx(ctx, p, fp, *name)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	fmt.Fprintf(os.Stderr, "host: %s wall, %d events, %.0f events/sec\n",
		fmtDur(res.Host.Wall), res.Host.Events, res.Host.EventsPerSec)
	if err := obs.emitStats(res.Stats); err != nil {
		return err
	}
	if res.Verified != res.Tenants {
		return fmt.Errorf("%d of %d tenants produced INCORRECT results", res.Tenants-res.Verified, res.Tenants)
	}
	return nil
}

// profileCmd runs the bench matrix (or one -mode/-class cell) with the
// simulated-time profiler attached and writes the attribution as folded
// stacks and/or a pprof protobuf. The profile keys on simulated time, so it
// is byte-identical across runs and across -jobs settings; with neither
// -folded nor -pprof given, folded stacks go to stdout.
func profileCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	workloadName := fs.String("workload", "pathfinder", "workload to profile")
	mode := fs.String("mode", "", "profile a single safety configuration instead of the matrix (see bctool list)")
	class := fs.String("class", "high", "GPU class for -mode: high or moderate")
	folded := fs.String("folded", "", "write folded-stacks text (flamegraph input) to this file (- = stdout)")
	pprofPath := fs.String("pprof", "", "write a pprof protobuf to this file (open with `go tool pprof`)")
	jobs := fs.Int("jobs", 0, "concurrent simulations (0 = all cores, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "per-simulation timeout (0 = none)")
	quiet := fs.Bool("quiet", false, "suppress per-job progress lines on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pr *bc.Profiler
	if *mode != "" {
		m, err := parseMode(*mode)
		if err != nil {
			return err
		}
		cl := bc.HighlyThreaded
		if strings.HasPrefix(*class, "mod") {
			cl = bc.ModeratelyThreaded
		}
		p, err := bc.ProfileRun(ctx, m, cl, bc.DefaultParams(), *workloadName)
		if err != nil {
			return err
		}
		pr = p
	} else {
		var t tracker
		t.quiet = *quiet
		ex := bc.Exec{Jobs: *jobs, Timeout: *timeout, Progress: t.done}
		p, err := bc.Profile(ctx, ex, bc.DefaultParams(), *workloadName)
		if err != nil {
			return err
		}
		pr = p
	}
	if *folded == "" && *pprofPath == "" {
		*folded = "-"
	}
	if *folded != "" {
		if *folded == "-" {
			if err := pr.WriteFolded(os.Stdout); err != nil {
				return err
			}
		} else {
			f, err := os.Create(*folded)
			if err != nil {
				return err
			}
			if err := pr.WriteFolded(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "folded stacks written to %s\n", *folded)
		}
	}
	if *pprofPath != "" {
		f, err := os.Create(*pprofPath)
		if err != nil {
			return err
		}
		if err := pr.WritePprof(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pprof profile written to %s (go tool pprof -top %s)\n", *pprofPath, *pprofPath)
	}
	return nil
}

// benchRun is one row of `bctool bench` output: a (mode, class, workload)
// simulation and its host-side self-measurement.
type benchRun struct {
	Name         string  `json:"name"`
	SimPs        uint64  `json:"sim_ps"`
	WallMs       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// benchReport is the `bctool bench -json` document; checked-in snapshots
// of it (BENCH.json) record simulator throughput on a reference host.
type benchReport struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	// CPUModel and GoMaxProcs identify the measuring host: events/sec
	// comparisons across different hosts are informational only, and
	// `bench -compare` warns when they differ from the snapshot's.
	CPUModel   string     `json:"cpu_model"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Runs       []benchRun `json:"runs"`
	// TotalEventsPerSec is the sum of events over the sum of wall time —
	// the simulator's aggregate serial throughput.
	TotalEventsPerSec float64 `json:"total_events_per_sec"`
}

// bench self-measures the simulator: a fixed matrix of short runs, each
// reporting wall-clock, events fired and events/sec from RunResult.Host.
func bench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	compare := fs.String("compare", "", "compare against a BENCH.json snapshot: error on any sim_ps/events drift, report the events/sec delta")
	workloadName := fs.String("workload", "pathfinder", "workload to measure")
	border := fs.String("border", "", "border design for the base matrix rows (see bctool list; default "+bc.DefaultBorderDesign+"); the per-design rows always sweep every design")
	if err := fs.Parse(args); err != nil {
		return err
	}
	basep := bc.DefaultParams()
	if *border != "" {
		basep.Border = *border
	}
	matrix := []struct {
		mode  bc.Mode
		class bc.GPUClass
		label string
	}{
		{bc.ATSOnly, bc.HighlyThreaded, "ats-only/high"},
		{bc.BCBCC, bc.HighlyThreaded, "bc-bcc/high"},
		{bc.FullIOMMU, bc.HighlyThreaded, "full-iommu/high"},
		{bc.BCBCC, bc.ModeratelyThreaded, "bc-bcc/moderate"},
	}
	rep := benchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		CPUModel:   cpuModel(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	var wall time.Duration
	var events uint64
	for _, m := range matrix {
		res, err := bc.RunCtx(ctx, m.mode, m.class, *workloadName, basep, bc.RunOptions{})
		if err != nil {
			return fmt.Errorf("bench %s: %w", m.label, err)
		}
		rep.Runs = append(rep.Runs, benchRun{
			Name:         m.label + "/" + *workloadName,
			SimPs:        uint64(res.Runtime),
			WallMs:       float64(res.Host.Wall) / float64(time.Millisecond),
			Events:       res.Host.Events,
			EventsPerSec: res.Host.EventsPerSec,
		})
		wall += res.Host.Wall
		events += res.Host.Events
	}
	// Per-design rows: the bc-bcc/moderate cell once per registered border
	// design. sim_ps and events are deterministic model outputs per design,
	// so `bench -compare` doubles as a cross-design determinism check (the
	// flat row must reproduce the bc-bcc/moderate row above exactly).
	for _, design := range bc.BorderDesigns() {
		dp := bc.DefaultParams()
		dp.Border = design
		res, err := bc.RunCtx(ctx, bc.BCBCC, bc.ModeratelyThreaded, *workloadName, dp, bc.RunOptions{})
		if err != nil {
			return fmt.Errorf("bench bc-bcc/moderate/%s: %w", design, err)
		}
		rep.Runs = append(rep.Runs, benchRun{
			Name:         "bc-bcc/moderate/" + design + "/" + *workloadName,
			SimPs:        uint64(res.Runtime),
			WallMs:       float64(res.Host.Wall) / float64(time.Millisecond),
			Events:       res.Host.Events,
			EventsPerSec: res.Host.EventsPerSec,
		})
		wall += res.Host.Wall
		events += res.Host.Events
	}
	// Replay row: record the workload's reference trace once, then run the
	// bc-bcc/moderate cell from the recording instead of the generator.
	// Replay must reproduce the live row's sim_ps and events bit-exactly,
	// and bench asserts it here — every bench run doubles as a
	// record/replay equivalence check, and BENCH.json pins both.
	{
		rec, err := bc.RecordTrace(*workloadName, basep.Scale)
		if err != nil {
			return fmt.Errorf("bench replay record: %w", err)
		}
		dir, err := os.MkdirTemp("", "bctool-bench-trace")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		path := dir + "/" + *workloadName + ".bctrace"
		if err := bc.WriteTraceFile(path, rec); err != nil {
			return err
		}
		rp := basep
		rp.Trace = path
		res, err := bc.RunCtx(ctx, bc.BCBCC, bc.ModeratelyThreaded, *workloadName, rp, bc.RunOptions{})
		if err != nil {
			return fmt.Errorf("bench replay: %w", err)
		}
		live := rep.Runs[3] // bc-bcc/moderate above
		if uint64(res.Runtime) != live.SimPs || res.Host.Events != live.Events {
			return fmt.Errorf("bench replay diverged from live %s: sim_ps %d vs %d, events %d vs %d",
				live.Name, res.Runtime, live.SimPs, res.Host.Events, live.Events)
		}
		rep.Runs = append(rep.Runs, benchRun{
			Name:         "replay/bc-bcc/moderate/" + *workloadName,
			SimPs:        uint64(res.Runtime),
			WallMs:       float64(res.Host.Wall) / float64(time.Millisecond),
			Events:       res.Host.Events,
			EventsPerSec: res.Host.EventsPerSec,
		})
		wall += res.Host.Wall
		events += res.Host.Events
	}
	// Fleet rows: the same fleet serial and on 4 workers. sim_ps and
	// events must be identical between the two — `bench -compare` against
	// the snapshot doubles as a determinism check of the sharded engine.
	for _, workers := range []int{1, 4} {
		fp := bc.DefaultFleetParams()
		fp.Workers = workers
		fres, err := bc.RunFleetCtx(ctx, bc.DefaultParams(), fp, *workloadName)
		if err != nil {
			return fmt.Errorf("bench fleet w%d: %w", workers, err)
		}
		rep.Runs = append(rep.Runs, benchRun{
			Name:         fmt.Sprintf("fleet%d/bc-bcc/w%d/%s", fp.Tenants, workers, *workloadName),
			SimPs:        uint64(fres.SimTime),
			WallMs:       float64(fres.Host.Wall) / float64(time.Millisecond),
			Events:       fres.Events,
			EventsPerSec: fres.Host.EventsPerSec,
		})
		wall += fres.Host.Wall
		events += fres.Events
	}
	if s := wall.Seconds(); s > 0 {
		rep.TotalEventsPerSec = float64(events) / s
	}
	if *compare != "" {
		return benchCompare(rep, *compare)
	}
	if *asJSON {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(blob))
		return nil
	}
	fmt.Printf("%-28s %12s %12s %14s\n", "run", "wall", "events", "events/sec")
	for _, r := range rep.Runs {
		fmt.Printf("%-28s %11.1fms %12d %14.0f\n", r.Name, r.WallMs, r.Events, r.EventsPerSec)
	}
	fmt.Printf("aggregate: %.0f events/sec on %d CPUs (%s/%s, %s)\n",
		rep.TotalEventsPerSec, rep.CPUs, rep.GOOS, rep.GOARCH, rep.GoVersion)
	return nil
}

// cpuModel returns the host CPU's model string ("model name" from
// /proc/cpuinfo on Linux), falling back to GOARCH where unavailable.
func cpuModel() string {
	if blob, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(blob), "\n") {
			if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
				return strings.TrimSpace(v)
			}
		}
	}
	return runtime.GOARCH
}

// benchCompare checks a fresh bench matrix against a checked-in snapshot.
// sim_ps and events are host-independent model outputs, so any drift means
// the simulation itself changed and is an error. events/sec is host-bound,
// so its delta is reported but never fails the comparison — and a host
// mismatch (different CPU model, core count, GOMAXPROCS or Go version) is
// a warning that the throughput numbers are not comparable, never an error.
func benchCompare(rep benchReport, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap benchReport
	if err := json.Unmarshal(blob, &snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	warn := func(field, got, want string) {
		if want != "" && got != want {
			fmt.Printf("warning: host %s differs from snapshot (%q vs %q); events/sec deltas are informational\n",
				field, got, want)
		}
	}
	warn("os/arch", rep.GOOS+"/"+rep.GOARCH, snap.GOOS+"/"+snap.GOARCH)
	warn("cpu model", rep.CPUModel, snap.CPUModel)
	if snap.CPUs != 0 && rep.CPUs != snap.CPUs {
		fmt.Printf("warning: host cpus differ from snapshot (%d vs %d); events/sec deltas are informational\n",
			rep.CPUs, snap.CPUs)
	}
	if snap.GoMaxProcs != 0 && rep.GoMaxProcs != snap.GoMaxProcs {
		fmt.Printf("warning: GOMAXPROCS differs from snapshot (%d vs %d); events/sec deltas are informational\n",
			rep.GoMaxProcs, snap.GoMaxProcs)
	}
	warn("go version", rep.GoVersion, snap.GoVersion)
	byName := make(map[string]benchRun, len(snap.Runs))
	for _, r := range snap.Runs {
		byName[r.Name] = r
	}
	bad := 0
	for _, r := range rep.Runs {
		want, ok := byName[r.Name]
		if !ok {
			fmt.Printf("%-28s not in snapshot %s\n", r.Name, path)
			bad++
			continue
		}
		if r.SimPs != want.SimPs || r.Events != want.Events {
			fmt.Printf("%-28s DRIFT sim_ps %d->%d events %d->%d\n",
				r.Name, want.SimPs, r.SimPs, want.Events, r.Events)
			bad++
			continue
		}
		fmt.Printf("%-28s ok: sim_ps=%d events=%d (%+.1f%% events/sec vs snapshot)\n",
			r.Name, r.SimPs, r.Events, 100*(r.EventsPerSec-want.EventsPerSec)/want.EventsPerSec)
	}
	if snap.TotalEventsPerSec > 0 {
		fmt.Printf("aggregate: %.0f events/sec, snapshot %.0f (%+.1f%%; informational — hosts differ)\n",
			rep.TotalEventsPerSec, snap.TotalEventsPerSec,
			100*(rep.TotalEventsPerSec-snap.TotalEventsPerSec)/snap.TotalEventsPerSec)
	}
	if bad > 0 {
		return fmt.Errorf("%d bench run(s) drifted from %s (simulation outputs are deterministic; refresh with `make bench-json` only if the change is intended)", bad, path)
	}
	return nil
}

// traceCheck validates a Chrome trace-event file: well-formed JSON, the
// fields Perfetto needs, and monotonically sane timestamps. With -stats it
// instead validates a -stats-json document: every histogram entry must be
// schema-correct (genuine bucket bounds, counts that sum, percentiles that
// recompute). It is the `make trace-smoke` backend.
func traceCheck(args []string) error {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	statsMode := fs.Bool("stats", false, "validate a -stats-json metrics document instead of a trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: bctool tracecheck [-stats] FILE")
	}
	if *statsMode {
		blob, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		hists, err := bc.ValidateStatsJSON(blob)
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(0), err)
		}
		fmt.Printf("%s: valid, %d histogram(s)\n", fs.Arg(0), hists)
		return nil
	}
	blob, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", fs.Arg(0), err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: no trace events", fs.Arg(0))
	}
	cats := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("%s: event %d has no name", fs.Arg(0), i)
		}
		switch ev.Ph {
		case "X", "i", "C", "M":
		default:
			return fmt.Errorf("%s: event %d (%s) has unknown phase %q", fs.Arg(0), i, ev.Name, ev.Ph)
		}
		if ev.Ph != "M" {
			if ev.Ts == nil || *ev.Ts < 0 {
				return fmt.Errorf("%s: event %d (%s) has a missing or negative ts", fs.Arg(0), i, ev.Name)
			}
			cats[ev.Cat]++
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("%s: event %d (%s) lacks pid/tid", fs.Arg(0), i, ev.Name)
		}
	}
	names := make([]string, 0, len(cats))
	for c := range cats {
		names = append(names, c)
	}
	sort.Strings(names)
	fmt.Printf("%s: valid, %d events\n", fs.Arg(0), len(doc.TraceEvents))
	for _, c := range names {
		fmt.Printf("  %-16s %d\n", c, cats[c])
	}
	return nil
}

func knownWorkload(name string) bool {
	for _, w := range bc.Workloads() {
		if w == name {
			return true
		}
	}
	return false
}

// replayTraceRun executes a multi-segment or probed recording and prints
// the trace-run report. A safe mode granting any adversarial probe is a
// sandbox breach and exits non-zero, as does any segment image mismatch.
func replayTraceRun(ctx context.Context, m bc.Mode, cl bc.GPUClass, rec *bc.RefTrace, p bc.Params, opts bc.RunOptions, obs obsFlags) error {
	res, err := bc.RunTraceCtx(ctx, m, cl, rec, p, opts)
	if err != nil {
		return err
	}
	var granted, denied uint64
	var verifyErr error
	for _, s := range res.Segments {
		granted += s.ProbesGranted
		denied += s.ProbesDenied
		if s.VerifyErr != nil && verifyErr == nil {
			verifyErr = fmt.Errorf("segment %s: %w", s.Name, s.VerifyErr)
		}
	}
	fmt.Printf("trace         %s (%d segments)\n", res.Workload, len(res.Segments))
	fmt.Printf("mode          %v\n", res.Mode)
	fmt.Printf("class         %v\n", res.Class)
	fmt.Printf("sim time      %.3f ms\n", float64(res.SimTime)/1e9)
	fmt.Printf("memory ops    %d\n", res.Ops)
	if m == bc.BCNoBCC || m == bc.BCBCC {
		fmt.Printf("BC checks     %d\n", res.BCChecks)
		fmt.Printf("BCC miss      %.4f\n", res.BCCMissRatio)
	}
	if granted+denied > 0 {
		fmt.Printf("probes        %d granted, %d denied\n", granted, denied)
	}
	fmt.Fprintf(os.Stderr, "host: %s wall, %d events, %.0f events/sec\n",
		fmtDur(res.Host.Wall), res.Host.Events, res.Host.EventsPerSec)
	if err := obs.emitStats(res.Stats); err != nil {
		return err
	}
	if verifyErr != nil {
		return fmt.Errorf("results INCORRECT: %w", verifyErr)
	}
	if m.Safe() && granted > 0 {
		return fmt.Errorf("sandbox BREACHED: %d adversarial probe(s) granted under %v", granted, m)
	}
	fmt.Println("results       verified correct")
	return nil
}

// recordCmd captures reference traces: workload generators (`-workload
// bfs`, `-workload all`) or synthetic traffic (`-traffic churn`), written
// as versioned, content-hashed .bctrace files.
func recordCmd(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	name := fs.String("workload", "", "workload to record, or 'all' (every workload into the -o directory)")
	shape := fs.String("traffic", "", "synthetic traffic shape to generate instead of a workload (see bctool list)")
	seed := fs.Uint64("seed", 1, "traffic generator seed")
	segments := fs.Int("segments", 0, "traffic segment count (0 = shape default)")
	wavefronts := fs.Int("wavefronts", 0, "traffic wavefronts per phase (0 = shape default)")
	ops := fs.Int("ops", 0, "traffic ops per wavefront (0 = shape default)")
	scale := fs.Int("scale", 1, "workload problem-size multiplier")
	out := fs.String("o", "traces", "output file, or directory (gets <name>.bctrace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*name == "") == (*shape == "") {
		return fmt.Errorf("record: exactly one of -workload or -traffic is required")
	}
	write := func(rec *bc.RefTrace, base string) error {
		path := *out
		if strings.HasSuffix(path, "/") || !strings.HasSuffix(path, ".bctrace") {
			path = path + "/" + base + ".bctrace"
		}
		if err := bc.WriteTraceFile(path, rec); err != nil {
			return err
		}
		sum, err := rec.Hash()
		if err != nil {
			return err
		}
		blob, _ := os.Stat(path)
		fmt.Printf("recorded %-12s %3d segment(s) %8d ops %9d bytes sha256:%x -> %s\n",
			rec.Workload, len(rec.Segments), rec.Ops(), blob.Size(), sum[:6], path)
		return nil
	}
	if *shape != "" {
		rec, err := bc.GenerateTraffic(bc.TrafficConfig{
			Shape: *shape, Seed: *seed, Segments: *segments, Wavefronts: *wavefronts, Ops: *ops,
		})
		if err != nil {
			return err
		}
		return write(rec, fmt.Sprintf("%s-s%d", *shape, *seed))
	}
	names := []string{*name}
	if *name == "all" {
		names = bc.Workloads()
	}
	for _, n := range names {
		rec, err := bc.RecordTrace(n, *scale)
		if err != nil {
			return err
		}
		if err := write(rec, n); err != nil {
			return err
		}
	}
	return nil
}

// sweepReplay runs a replay sweep grid: traces (synthetic shapes x seeds,
// plus any recorded files) crossed with mode/border/class axes. Replay
// feeds recorded references back through the full border/ATS/cache path,
// so a thousand-cell grid costs no generator time, and the whole artifact
// is byte-identical at any -jobs and -shards setting.
func sweepReplay(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	shapes := fs.String("traffic", "all", "comma-separated synthetic shapes, or 'all', or '' for none")
	seeds := fs.Int("seeds", 1, "seeds per shape (1..N, one trace each)")
	traces := fs.String("traces", "", "comma-separated recorded .bctrace files to include")
	modes := fs.String("modes", "all", "comma-separated modes (see bctool list), or 'all'")
	borders := fs.String("borders", "all", "comma-separated border designs for the BC modes, or 'all'")
	classes := fs.String("classes", "both", "GPU classes: high, moderate, or both")
	jobs := fs.Int("jobs", 0, "concurrent cells (0 = all cores, 1 = serial); output is byte-identical at any setting")
	shards := fs.Int("shards", 0, "run each cell on the sharded engine with this many workers (0 = direct engine); output is byte-identical at any setting")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	quiet := fs.Bool("quiet", false, "suppress the summary line on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("sweep: unexpected argument %q (recorded files go in -traces)", fs.Arg(0))
	}

	trs := map[string]*bc.RefTrace{}
	var names []string
	add := func(name string, rec *bc.RefTrace) error {
		if _, dup := trs[name]; dup {
			return fmt.Errorf("sweep: duplicate trace name %q", name)
		}
		trs[name] = rec
		names = append(names, name)
		return nil
	}
	if *shapes != "" {
		list := bc.TrafficShapes()
		if *shapes != "all" {
			list = splitList(*shapes)
		}
		for _, shape := range list {
			for s := 1; s <= *seeds; s++ {
				rec, err := bc.GenerateTraffic(bc.TrafficConfig{Shape: shape, Seed: uint64(s)})
				if err != nil {
					return err
				}
				if err := add(fmt.Sprintf("%s-s%d", shape, s), rec); err != nil {
					return err
				}
			}
		}
	}
	for _, path := range splitList(*traces) {
		rec, err := bc.LoadTrace(path)
		if err != nil {
			return err
		}
		if err := add(rec.Workload, rec); err != nil {
			return err
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("sweep: no traces (empty -traffic and -traces)")
	}

	ms := []bc.Mode{bc.ATSOnly, bc.FullIOMMU, bc.CAPILike, bc.BCNoBCC, bc.BCBCC}
	if *modes != "all" {
		ms = ms[:0]
		for _, s := range splitList(*modes) {
			m, err := parseMode(s)
			if err != nil {
				return err
			}
			ms = append(ms, m)
		}
	}
	bs := bc.BorderDesigns()
	if *borders != "all" {
		bs = splitList(*borders)
	}
	var cls []bc.GPUClass
	switch *classes {
	case "both":
		cls = []bc.GPUClass{bc.HighlyThreaded, bc.ModeratelyThreaded}
	case "high":
		cls = []bc.GPUClass{bc.HighlyThreaded}
	case "moderate", "mod":
		cls = []bc.GPUClass{bc.ModeratelyThreaded}
	default:
		return fmt.Errorf("sweep: unknown -classes %q (high, moderate, both)", *classes)
	}

	cells := bc.SweepGrid(trs, names, ms, bs, cls, bc.DefaultParams(), *shards)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: %d cells (%d traces x modes/borders/classes), jobs=%d shards=%d\n",
			len(cells), len(names), *jobs, *shards)
	}
	start := time.Now()
	rows, err := bc.RunSweepCtx(ctx, cells, *jobs)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(bc.SweepCSV(rows))
	} else {
		fmt.Print(bc.RenderSweep(rows))
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: %d cells in %s\n", len(rows), fmtDur(time.Since(start)))
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
