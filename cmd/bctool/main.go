// Command bctool regenerates the evaluation artifacts of "Border Control:
// Sandboxing Accelerators" (MICRO-48, 2015): every table and figure of the
// paper's evaluation section, plus single-run inspection of any workload
// under any safety configuration.
//
// Sweeps run on the parallel experiment-execution layer: independent
// simulations spread over all cores (bounded by -jobs) with results
// collected in submission order, so the output is byte-identical at any
// parallelism. Progress lines go to stderr; artifacts go to stdout.
//
// Usage:
//
//	bctool table1|table2|table3            print a paper table
//	bctool fig4|fig5|fig6|fig7 [csv]       regenerate a paper figure
//	bctool all                             everything above + security matrix
//	bctool security                        run the threat-model probe matrix
//	bctool run -mode bc-bcc -class high -workload bfs [-downgrades N]
//	bctool list                            list workloads and modes
//
// Figure, security and all accept -jobs N (0 = all cores, 1 = serial),
// -timeout D (per simulation) and -quiet (suppress progress lines). Any
// failed job makes bctool exit non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	bc "bordercontrol"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		fmt.Print(bc.RenderTable1())
	case "table2":
		fmt.Print(bc.RenderTable2())
	case "table3":
		fmt.Print(bc.RenderTable3(bc.DefaultParams()))
	case "fig4", "fig5", "fig6", "fig7", "security":
		err = sweep(ctx, cmd, args)
	case "all":
		err = all(ctx, args)
	case "run":
		err = runOne(ctx, args)
	case "list":
		fmt.Println("workloads:", strings.Join(bc.Workloads(), " "))
		fmt.Println("modes:     ats-only full-iommu capi bc-nobcc bc-bcc")
		fmt.Println("classes:   high moderate")
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bctool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bctool <table1|table2|table3|fig4|fig5|fig6|fig7|security|all|run|list> [csv] [-jobs N] [-timeout D] [-quiet]`)
}

// execFlags are the execution-layer knobs shared by every sweep command.
type execFlags struct {
	jobs    int
	timeout time.Duration
	quiet   bool
	csv     bool
}

// parseExec parses sweep flags; a leading "csv" operand is accepted for
// backward compatibility with `bctool fig4 csv`.
func parseExec(name string, args []string) (execFlags, error) {
	var f execFlags
	if len(args) > 0 && args[0] == "csv" {
		f.csv = true
		args = args[1:]
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.IntVar(&f.jobs, "jobs", 0, "concurrent simulations (0 = all cores, 1 = serial)")
	fs.DurationVar(&f.timeout, "timeout", 0, "per-simulation timeout (0 = none)")
	fs.BoolVar(&f.quiet, "quiet", false, "suppress per-job progress lines on stderr")
	fs.BoolVar(&f.csv, "csv", f.csv, "emit CSV instead of a text table")
	err := fs.Parse(args)
	return f, err
}

// workers reports the effective worker count for the summary line.
func (f execFlags) workers() int {
	if f.jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return f.jobs
}

// tracker accumulates per-job statistics and prints progress to stderr.
type tracker struct {
	quiet  bool
	jobs   int
	failed int
	busy   time.Duration // summed per-job wall-clock across all workers
}

func (t *tracker) done(r bc.JobResult) {
	t.jobs++
	t.busy += r.Elapsed
	status := "ok"
	if r.Err != nil {
		t.failed++
		status = "FAILED: " + r.Err.Error()
	}
	if !t.quiet {
		fmt.Fprintf(os.Stderr, "%-44s %9s  %s\n", r.Name, fmtDur(r.Elapsed), status)
	}
}

func (f execFlags) exec(t *tracker) bc.Exec {
	t.quiet = f.quiet
	return bc.Exec{Jobs: f.jobs, Timeout: f.timeout, Progress: t.done}
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// sweep runs one figure or the security matrix on the execution layer.
func sweep(ctx context.Context, cmd string, args []string) error {
	f, err := parseExec(cmd, args)
	if err != nil {
		return err
	}
	var t tracker
	ex := f.exec(&t)
	p := bc.DefaultParams()
	switch cmd {
	case "fig4":
		for _, class := range []bc.GPUClass{bc.HighlyThreaded, bc.ModeratelyThreaded} {
			res, err := bc.Figure4Ctx(ctx, ex, class, p)
			if err != nil {
				return err
			}
			if f.csv {
				fmt.Print(res.CSV())
			} else {
				fmt.Println(res.Render())
			}
		}
	case "fig5":
		res, err := bc.Figure5Ctx(ctx, ex, p)
		if err != nil {
			return err
		}
		if f.csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Render())
		}
	case "fig6":
		res, err := bc.Figure6Ctx(ctx, ex, p)
		if err != nil {
			return err
		}
		if f.csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Render())
		}
	case "fig7":
		res, err := bc.Figure7Ctx(ctx, ex, p)
		if err != nil {
			return err
		}
		if f.csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Render())
		}
	case "security":
		results, err := bc.SecurityMatrixCtx(ctx, ex, p)
		if err != nil {
			return err
		}
		fmt.Print(bc.RenderSecurityMatrix(results))
	}
	return nil
}

// all regenerates every artifact and prints a per-artifact wall-clock and
// effective-parallelism summary to stderr.
func all(ctx context.Context, args []string) error {
	f, err := parseExec("all", args)
	if err != nil {
		return err
	}
	var t tracker
	start := time.Now()
	artifacts, err := bc.RunAll(ctx, bc.Config{Exec: f.exec(&t)})
	if err != nil {
		return err
	}
	wall := time.Since(start)
	for _, a := range artifacts {
		fmt.Print(a.Text)
	}

	fmt.Fprintf(os.Stderr, "\n%-10s %10s\n", "artifact", "wall")
	for _, a := range artifacts {
		fmt.Fprintf(os.Stderr, "%-10s %10s\n", a.Name, fmtDur(a.Elapsed))
	}
	parallelism := 0.0
	if wall > 0 {
		parallelism = float64(t.busy) / float64(wall)
	}
	fmt.Fprintf(os.Stderr, "\n%d simulations in %s wall (%s of simulation time, %d workers): effective parallelism %.2fx\n",
		t.jobs, fmtDur(wall), fmtDur(t.busy), f.workers(), parallelism)
	if t.failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", t.failed, t.jobs)
	}
	return nil
}

func parseMode(s string) (bc.Mode, error) {
	switch s {
	case "ats-only":
		return bc.ATSOnly, nil
	case "full-iommu":
		return bc.FullIOMMU, nil
	case "capi":
		return bc.CAPILike, nil
	case "bc-nobcc":
		return bc.BCNoBCC, nil
	case "bc-bcc":
		return bc.BCBCC, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func runOne(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	mode := fs.String("mode", "bc-bcc", "safety configuration (see bctool list)")
	class := fs.String("class", "high", "GPU class: high or moderate")
	name := fs.String("workload", "bfs", "workload name")
	downgrades := fs.Float64("downgrades", 0, "permission downgrades per second to inject")
	scale := fs.Int("scale", 1, "workload problem-size multiplier")
	timeout := fs.Duration("timeout", 0, "abort the simulation after this long (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	cl := bc.HighlyThreaded
	if strings.HasPrefix(*class, "mod") {
		cl = bc.ModeratelyThreaded
	}
	p := bc.DefaultParams()
	p.Scale = *scale
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := bc.RunCtx(ctx, m, cl, *name, p, bc.RunOptions{DowngradesPerSec: *downgrades})
	if err != nil {
		return err
	}
	fmt.Printf("workload      %s\n", res.Workload)
	fmt.Printf("mode          %v\n", res.Mode)
	fmt.Printf("class         %v\n", res.Class)
	fmt.Printf("GPU cycles    %d\n", res.Cycles)
	fmt.Printf("runtime       %.3f ms\n", float64(res.Runtime)/1e9)
	fmt.Printf("memory ops    %d\n", res.Ops)
	fmt.Printf("DRAM util     %.1f%%\n", res.DRAMUtilization*100)
	if res.L1MissRatio > 0 || res.L2MissRatio > 0 {
		fmt.Printf("L1 miss       %.3f\n", res.L1MissRatio)
		fmt.Printf("L2 miss       %.3f\n", res.L2MissRatio)
		fmt.Printf("L1 TLB miss   %.4f\n", res.TLBMissRatio)
	}
	fmt.Printf("translations  %d (%d page walks)\n", res.Translations, res.PageWalks)
	if m == bc.BCNoBCC || m == bc.BCBCC {
		fmt.Printf("BC checks     %d (%.3f/cycle)\n", res.BCChecks, res.RequestsPerCycle())
		fmt.Printf("BCC miss      %.4f\n", res.BCCMissRatio)
	}
	if res.Downgrades > 0 {
		fmt.Printf("downgrades    %d\n", res.Downgrades)
	}
	if res.VerifyErr != nil {
		return fmt.Errorf("results INCORRECT: %w", res.VerifyErr)
	}
	fmt.Println("results       verified correct")
	return nil
}
