// `bctool top`: a live terminal dashboard over a running experiment
// service, fed by the /v1/watch firehose (per-job activity), /v1/healthz
// (queue/uptime gauges) and /v1/metrics (cache and worker series). Pure
// observation — it only issues GETs.

package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"bordercontrol/internal/serve"
)

// topCmd renders the dashboard until interrupted. With -once it prints a
// single frame and exits; with -raw it dumps the metrics page, and
// -require additionally asserts that named series exist and the page
// parses — the smoke test's "metrics exist and parse" check.
func topCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8373", "service base URL")
	wait := fs.Duration("wait", 10*time.Second, "how long to wait for the service to answer /v1/healthz")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one frame and exit")
	raw := fs.Bool("raw", false, "dump the raw /v1/metrics page and exit")
	require := fs.String("require", "", "comma-separated metric families that must exist on /v1/metrics (implies -raw; exits non-zero when missing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("top: unexpected argument %q", fs.Arg(0))
	}
	c := &serve.Client{Base: *addr}
	if err := c.WaitReady(ctx, *wait); err != nil {
		return err
	}

	if *raw || *require != "" {
		text, err := c.MetricsText(ctx)
		if err != nil {
			return err
		}
		fmt.Print(text)
		if *require == "" {
			return nil
		}
		m, err := serve.ParseMetrics(text)
		if err != nil {
			return fmt.Errorf("top: /v1/metrics does not parse: %w", err)
		}
		var missing []string
		for _, fam := range splitList(*require) {
			if !m.Has(fam) {
				missing = append(missing, fam)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("top: /v1/metrics lacks required series: %s", strings.Join(missing, ", "))
		}
		fmt.Fprintf(os.Stderr, "top: %d series parsed, all required families present\n", len(m))
		return nil
	}

	// Live mode: a background firehose tail keeps per-job last-activity
	// lines fresh between frames; the frame loop polls health + jobs +
	// metrics at -interval.
	var mu sync.Mutex
	lastMsg := map[string]string{}
	var cursor uint64
	var drops uint64
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	go func() {
		for watchCtx.Err() == nil {
			_ = c.Watch(watchCtx, cursor, func(we serve.WatchEvent) {
				mu.Lock()
				cursor = we.Cursor
				if we.Type == "drop" {
					drops++
				} else {
					lastMsg[we.Job] = we.Msg
				}
				mu.Unlock()
			})
			select {
			case <-watchCtx.Done():
			case <-time.After(500 * time.Millisecond):
			}
		}
	}()

	frame := func(clear bool) error {
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		jobs, err := c.Jobs(ctx)
		if err != nil {
			return err
		}
		text, err := c.MetricsText(ctx)
		if err != nil {
			return err
		}
		m, err := serve.ParseMetrics(text)
		if err != nil {
			return err
		}
		mu.Lock()
		msgs := make(map[string]string, len(lastMsg))
		for k, v := range lastMsg {
			msgs[k] = v
		}
		nDrops := drops
		mu.Unlock()

		var b strings.Builder
		if clear {
			b.WriteString("\x1b[H\x1b[2J")
		}
		fmt.Fprintf(&b, "bctool top — %s  (version %s, up %s)\n",
			*addr, h.Version, (time.Duration(h.UptimeSeconds * float64(time.Second))).Round(time.Second))
		fmt.Fprintf(&b, "queue %d/%d   cache %d entries (hit ratio %.2f)   workers %g active / %g spawned   watch %g subs",
			h.QueueDepth, h.QueueCapacity, h.CacheEntries,
			m["bc_daemon_cache_hit_ratio"],
			m["bc_daemon_workers_active"], m["bc_daemon_workers_spawned_total"],
			m["bc_daemon_watch_subscribers"])
		if nDrops > 0 {
			fmt.Fprintf(&b, " (%d drop markers seen)", nDrops)
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "jobs  ")
		for _, st := range serve.States {
			fmt.Fprintf(&b, "%s=%d  ", st, h.Jobs[st])
		}
		b.WriteString("\n\n")
		fmt.Fprintf(&b, "%-8s %-10s %-10s %7s  %s\n", "JOB", "TYPE", "STATE", "EVENTS", "LAST ACTIVITY")
		for _, j := range jobs {
			msg := msgs[j.ID]
			if len(msg) > 60 {
				msg = msg[:57] + "..."
			}
			marker := ""
			if j.Cached {
				marker = " (cached)"
			}
			fmt.Fprintf(&b, "%-8s %-10s %-10s %7d  %s%s\n", j.ID, j.Type, j.State, j.Events, msg, marker)
		}
		if len(jobs) == 0 {
			b.WriteString("(no jobs submitted yet)\n")
		}
		fmt.Print(b.String())
		return nil
	}

	if *once {
		return frame(false)
	}
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		if err := frame(true); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return ctx.Err()
		case <-tick.C:
		}
	}
}
