// The experiment-service commands: `bctool serve` runs the HTTP daemon,
// `bctool submit` is its client, `bctool worker` is the internal
// sweep-cell executor serve spawns per shard of a fanned-out grid.

package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"bordercontrol/internal/serve"
)

// buildLogger turns a -log-level value into the daemon's slog.Logger on
// stderr, or nil (discard) for "off".
func buildLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off":
		return nil, nil
	default:
		return nil, fmt.Errorf("serve: unknown -log-level %q (debug, info, warn, error, off)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// serveCmd runs the experiment service until the context is cancelled
// (SIGINT/SIGTERM), then shuts down gracefully: the HTTP listener drains,
// the running job is cancelled cooperatively, queued jobs are marked
// cancelled.
func serveCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8373", "listen address")
	workers := fs.Int("workers", 0, "worker subprocesses per sweep job (0 = in-process); artifacts are byte-identical at any setting")
	jobs := fs.Int("jobs", 0, "host parallelism within a job or worker (0 = all cores)")
	queue := fs.Int("queue", 0, "job queue depth (0 = default 32); beyond it submissions get 503")
	cacheSize := fs.Int("cache-size", 0, "artifact cache entries (0 = default 128, negative disables)")
	watchBuf := fs.Int("watch-buffer", 0, "/v1/watch event ring size (0 = default 1024); slow subscribers past it see drop markers")
	logLevel := fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error, off")
	quiet := fs.Bool("quiet", false, "shorthand for -log-level off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quiet {
		*logLevel = "off"
	}
	logger, err := buildLogger(*logLevel)
	if err != nil {
		return err
	}
	srv := serve.New(serve.Options{
		QueueDepth:  *queue,
		Workers:     *workers,
		Jobs:        *jobs,
		CacheSize:   *cacheSize,
		WatchBuffer: *watchBuf,
		Logger:      logger,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv.Start(ctx)
	hs := &http.Server{Handler: srv.Handler()}
	if logger != nil {
		logger.Info("listening", "url", fmt.Sprintf("http://%s", ln.Addr()))
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		srv.Stop()
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutCtx)
		srv.Stop()
		return ctx.Err()
	}
}

// workerCmd is the internal protocol endpoint `serve` spawns: one JSON
// cell-list request on stdin, NDJSON rows on stdout, logs on stderr.
func workerCmd(ctx context.Context) error {
	return serve.RunWorker(ctx, os.Stdin, os.Stdout)
}

// submitCmd sends one job to a running service, streams its progress to
// stderr and prints the artifact to stdout — so `bctool submit ... sweep
// -csv` pipes exactly like `bctool sweep -csv` does locally.
func submitCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8373", "service base URL")
	wait := fs.Duration("wait", 10*time.Second, "how long to wait for the service to answer /v1/healthz")
	quiet := fs.Bool("quiet", false, "suppress progress lines on stderr (the cache-hit note still prints)")
	ping := fs.Bool("ping", false, "print the service's health document (uptime, queue, jobs by state, version) and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ping {
		if fs.NArg() > 0 {
			return fmt.Errorf("submit -ping: unexpected argument %q", fs.Arg(0))
		}
		c := &serve.Client{Base: *addr}
		if err := c.WaitReady(ctx, *wait); err != nil {
			return err
		}
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("service   %s\n", *addr)
		fmt.Printf("version   %s\n", h.Version)
		fmt.Printf("uptime    %s\n", (time.Duration(h.UptimeSeconds * float64(time.Second))).Round(time.Millisecond))
		fmt.Printf("queue     %d/%d\n", h.QueueDepth, h.QueueCapacity)
		fmt.Printf("cache     %d entries\n", h.CacheEntries)
		for _, st := range serve.States {
			fmt.Printf("jobs.%-10s %d\n", st, h.Jobs[st])
		}
		return nil
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("submit: missing job type (run, sweep, adversary, fleet)")
	}
	req, err := buildRequest(fs.Arg(0), fs.Args()[1:])
	if err != nil {
		return err
	}

	c := &serve.Client{Base: *addr}
	if err := c.WaitReady(ctx, *wait); err != nil {
		return err
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "submit: job %s accepted\n", st.ID)
	}
	final, err := c.Stream(ctx, st.ID, func(e serve.Event) {
		// The cache-hit note prints even under -quiet: whether a result was
		// recomputed is something scripts (and the smoke test) key on.
		if !*quiet || e.Type == "cache" {
			fmt.Fprintf(os.Stderr, "submit: %s\n", e.Msg)
		}
	})
	if err != nil {
		if ctx.Err() != nil {
			return context.Canceled
		}
		return err
	}
	if final.Cached && !*quiet {
		fmt.Fprintf(os.Stderr, "submit: job %s served from cache\n", final.ID)
	}
	art, artErr := c.Artifact(ctx, final.ID)
	if artErr == nil {
		fmt.Print(art)
	}
	if final.State != serve.StateDone {
		return fmt.Errorf("submit: job %s %s: %s", final.ID, final.State, final.Error)
	}
	return artErr
}

// buildRequest parses the per-type flags into a serve.Request. The flags
// mirror the local commands (`bctool run`, `bctool sweep`, ...), so a
// submission reads the same as the run it replaces.
func buildRequest(typ string, args []string) (serve.Request, error) {
	fs := flag.NewFlagSet("submit "+typ, flag.ContinueOnError)
	switch typ {
	case "run":
		workload := fs.String("workload", "pathfinder", "workload name")
		mode := fs.String("mode", "bc-bcc", "safety mode")
		class := fs.String("class", "high", "GPU class")
		border := fs.String("border", "", "border design for the BC modes")
		scale := fs.Int("scale", 0, "workload scale override")
		shards := fs.Int("shards", 0, "sharded-engine workers (0 = direct engine)")
		downgrades := fs.Float64("downgrades", 0, "permission downgrades per simulated second")
		if err := fs.Parse(args); err != nil {
			return serve.Request{}, err
		}
		return serve.Request{Type: "run", Run: &serve.RunSpec{
			Workload: *workload, Mode: *mode, Class: *class, Border: *border,
			Scale: *scale, Shards: *shards, DowngradesPerSec: *downgrades,
		}}, checkNoArgs(fs)
	case "sweep":
		traffic := fs.String("traffic", "all", "comma-separated synthetic shapes, or 'all'")
		seeds := fs.Int("seeds", 1, "seeds per shape")
		modes := fs.String("modes", "all", "comma-separated modes, or 'all'")
		borders := fs.String("borders", "all", "comma-separated border designs, or 'all'")
		classes := fs.String("classes", "both", "GPU classes: high, moderate, or both")
		shards := fs.Int("shards", 0, "sharded-engine workers per cell")
		csv := fs.Bool("csv", false, "emit CSV instead of a text table")
		workers := fs.Int("workers", 0, "worker subprocesses (0 = daemon default, negative = in-process)")
		if err := fs.Parse(args); err != nil {
			return serve.Request{}, err
		}
		spec := &serve.SweepSpec{
			Seeds: *seeds, Classes: *classes, Shards: *shards,
			CSV: *csv, Workers: *workers,
		}
		if *classes == "both" {
			spec.Classes = ""
		}
		if *traffic != "all" {
			spec.Traffic = splitList(*traffic)
		}
		if *modes != "all" {
			spec.Modes = splitList(*modes)
		}
		if *borders != "all" {
			spec.Borders = splitList(*borders)
		}
		return serve.Request{Type: "sweep", Sweep: spec}, checkNoArgs(fs)
	case "adversary":
		seed := fs.Int64("seed", 0, "campaign seed (0 = default)")
		campaigns := fs.Int("campaigns", 0, "campaigns per attack (0 = default)")
		attacks := fs.String("attacks", "", "comma-separated attack names (empty = all)")
		border := fs.String("border", "", "border design")
		if err := fs.Parse(args); err != nil {
			return serve.Request{}, err
		}
		return serve.Request{Type: "adversary", Adversary: &serve.AdversarySpec{
			Seed: *seed, Campaigns: *campaigns, Attacks: splitList(*attacks), Border: *border,
		}}, checkNoArgs(fs)
	case "fleet":
		tenants := fs.Int("tenants", 0, "tenant count (0 = default)")
		mode := fs.String("mode", "", "safety mode (empty = fleet default)")
		class := fs.String("class", "", "GPU class (empty = fleet default)")
		workload := fs.String("workload", "", "workload name (empty = pathfinder)")
		churn := fs.Int64("churn-ps", 0, "downgrade interval in simulated ps (-1 = off)")
		spread := fs.Int64("spread-ps", 0, "launch spread in simulated ps (-1 = off)")
		lookahead := fs.Int64("lookahead-ps", 0, "conservative lookahead in simulated ps")
		seed := fs.Int64("seed", 0, "fleet seed (0 = default)")
		shards := fs.Int("shards", 0, "engine shards (0 = default)")
		scale := fs.Int("scale", 0, "workload scale override")
		if err := fs.Parse(args); err != nil {
			return serve.Request{}, err
		}
		return serve.Request{Type: "fleet", Fleet: &serve.FleetSpec{
			Tenants: *tenants, Mode: *mode, Class: *class, Workload: *workload,
			ChurnPs: *churn, SpreadPs: *spread, LookaheadPs: *lookahead,
			Seed: *seed, Shards: *shards, Scale: *scale,
		}}, checkNoArgs(fs)
	default:
		return serve.Request{}, fmt.Errorf("submit: unknown job type %q (run, sweep, adversary, fleet)", typ)
	}
}

func checkNoArgs(fs *flag.FlagSet) error {
	if fs.NArg() > 0 {
		return fmt.Errorf("%s: unexpected argument %q", fs.Name(), fs.Arg(0))
	}
	return nil
}
