package bordercontrol

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/core"
	"bordercontrol/internal/harness"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
)

func hostosNew(store *memory.Store) *hostos.OS { return hostos.New(store) }

// The benches below regenerate every table and figure of the paper's
// evaluation section. Each prints its artifact once (so `go test -bench .`
// reproduces the paper's rows/series) and reports the headline numbers as
// benchmark metrics.

var printOnce sync.Map

func printArtifact(b *testing.B, key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
	_ = b
}

// BenchmarkTable1 regenerates the qualitative approach comparison.
func BenchmarkTable1(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = RenderTable1()
	}
	printArtifact(b, "table1", s)
}

// BenchmarkTable2 regenerates the configurations-under-study table.
func BenchmarkTable2(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = RenderTable2()
	}
	printArtifact(b, "table2", s)
}

// BenchmarkTable3 regenerates the simulation-configuration table.
func BenchmarkTable3(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = RenderTable3(DefaultParams())
	}
	printArtifact(b, "table3", s)
}

// skipInShort guards the benches that run full evaluation sweeps (tens of
// seconds each) so `go test -short -bench .` stays quick.
func skipInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("full evaluation sweep; skipped in -short mode")
	}
}

func benchFigure4(b *testing.B, class GPUClass) {
	skipInShort(b)
	var res harness.Figure4Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Figure4(context.Background(), Exec{}, class, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, "figure4-"+class.String(), res.Render())
	b.ReportMetric(res.GeoMean[FullIOMMU]*100, "%iommu")
	b.ReportMetric(res.GeoMean[CAPILike]*100, "%capi")
	b.ReportMetric(res.GeoMean[BCNoBCC]*100, "%bc-nobcc")
	b.ReportMetric(res.GeoMean[BCBCC]*100, "%bc-bcc")
}

// BenchmarkFigure4HighlyThreaded regenerates paper Figure 4a: runtime
// overhead of the four safe configurations vs the unsafe baseline on the
// 8-CU GPU (paper geomeans: 374%, 3.81%, 2.04%, 0.15%).
func BenchmarkFigure4HighlyThreaded(b *testing.B) { benchFigure4(b, HighlyThreaded) }

// BenchmarkFigure4ModeratelyThreaded regenerates paper Figure 4b (paper
// geomeans: 85%, 16.5%, 7.26%, 0.84%).
func BenchmarkFigure4ModeratelyThreaded(b *testing.B) { benchFigure4(b, ModeratelyThreaded) }

// BenchmarkFigure5 regenerates paper Figure 5: requests per cycle checked
// by Border Control (paper: mean 0.11, max 0.29 for bfs).
func BenchmarkFigure5(b *testing.B) {
	skipInShort(b)
	var res harness.Figure5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Figure5(context.Background(), Exec{}, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, "figure5", res.Render())
	b.ReportMetric(res.Average, "req/cycle")
}

// BenchmarkFigure6 regenerates paper Figure 6: BCC miss ratio vs size for
// 1/2/32/512 pages per entry (paper: 512 pages/entry reaches <0.1% miss
// under 1 KB).
func BenchmarkFigure6(b *testing.B) {
	skipInShort(b)
	var res harness.Figure6Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Figure6(context.Background(), Exec{}, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, "figure6", res.Render())
	curve := res.Curves[512]
	if len(curve) > 1 {
		b.ReportMetric(curve[1].MissRatio, "miss@2x512")
	}
}

// BenchmarkFigure7 regenerates paper Figure 7: overhead vs permission
// downgrade rate for BC-BCC and ATS-only on both GPU classes (paper:
// ~0.02% at context-switch rates; BC roughly twice the trusted baseline).
func BenchmarkFigure7(b *testing.B) {
	skipInShort(b)
	var res harness.Figure7Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Figure7(context.Background(), Exec{}, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, "figure7", res.Render())
	for _, pt := range res.Points {
		if pt.Mode == BCBCC && pt.Class == HighlyThreaded && pt.DowngradesPerSec == 1000 {
			b.ReportMetric(pt.Overhead*100, "%bc@1000/s")
		}
	}
}

// BenchmarkExecFigure4 runs the Figure 4a sweep serially and at full
// parallelism on the experiment-execution layer, so BENCH output captures
// the wall-clock speedup of the concurrent runner on this host. (On a
// single-core host both sub-benches take the same time — the runner adds
// no measurable overhead; the determinism tests guarantee identical
// output either way.)
func BenchmarkExecFigure4(b *testing.B) {
	skipInShort(b)
	par := runtime.GOMAXPROCS(0)
	if par < 2 {
		par = 2
	}
	for _, jobs := range []int{1, par} {
		jobs := jobs
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Figure4(context.Background(), Exec{Jobs: jobs}, HighlyThreaded, DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("empty figure")
				}
			}
		})
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

// runWorkload runs one (mode, workload) pair and returns cycles.
func runWorkload(b *testing.B, mode Mode, name string, p Params) Result {
	res, err := Run(mode, HighlyThreaded, name, p, RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if res.VerifyErr != nil {
		b.Fatalf("wrong results: %v", res.VerifyErr)
	}
	return res
}

// BenchmarkAblationBCCSize sweeps BCC geometry (entries x pages/entry) on
// the irregular bfs workload. At the paper's 512 pages/entry even a
// few-entry BCC covers the footprint (miss ratio ~0 — the 8 KB default is
// far past the knee); shrinking the sub-blocking factor makes capacity
// matter and the runtime cost of misses visible.
func BenchmarkAblationBCCSize(b *testing.B) {
	skipInShort(b)
	geometries := []struct{ entries, ppe int }{
		{64, 512}, // the paper's 8 KB BCC
		{4, 512},  // tiny but wide: still covers the footprint
		{64, 1},   // page-granular entries: capacity bound
		{16, 1},   // tiny and narrow: thrashing
	}
	for _, g := range geometries {
		g := g
		b.Run(fmt.Sprintf("%dx%d", g.entries, g.ppe), func(b *testing.B) {
			p := DefaultParams()
			p.BCC = core.BCCConfig{Entries: g.entries, PagesPerEntry: g.ppe, TagBits: 36}
			var res Result
			for i := 0; i < b.N; i++ {
				res = runWorkload(b, BCBCC, "bfs", p)
			}
			b.ReportMetric(res.BCCMissRatio, "missRatio")
			b.ReportMetric(float64(res.Cycles), "cycles")
		})
	}
}

// BenchmarkAblationPTLatency sweeps extra Protection Table latency beyond
// DRAM, isolating how much the parallel-lookup trick (paper §3.1.1) buys.
func BenchmarkAblationPTLatency(b *testing.B) {
	skipInShort(b)
	base := runWorkload(b, ATSOnly, "pathfinder", DefaultParams())
	for _, extra := range []uint64{0, 100, 400} {
		extra := extra
		b.Run(fmt.Sprintf("extraCycles=%d", extra), func(b *testing.B) {
			p := DefaultParams()
			p.TableLatencyCyc = extra
			var cyc uint64
			for i := 0; i < b.N; i++ {
				cyc = runWorkload(b, BCNoBCC, "pathfinder", p).Cycles
			}
			b.ReportMetric(float64(cyc)/float64(base.Cycles)*100-100, "%overhead")
		})
	}
}

// BenchmarkAblationEagerPT compares the paper's lazy Protection Table
// population against eagerly populating every mapped page at process start.
func BenchmarkAblationEagerPT(b *testing.B) {
	skipInShort(b)
	for _, eager := range []bool{false, true} {
		eager := eager
		name := "lazy"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			p := DefaultParams()
			p.EagerPopulate = eager
			var cyc uint64
			for i := 0; i < b.N; i++ {
				cyc = runWorkload(b, BCBCC, "hotspot", p).Cycles
			}
			b.ReportMetric(float64(cyc), "cycles")
		})
	}
}

// BenchmarkAblationSelectiveFlush compares the per-page downgrade flush
// against flushing the whole accelerator cache + zeroing the table
// (§3.2.4's two equivalent-correctness alternatives), under downgrade
// injection.
func BenchmarkAblationSelectiveFlush(b *testing.B) {
	skipInShort(b)
	for _, selective := range []bool{true, false} {
		selective := selective
		name := "full"
		if selective {
			name = "selective"
		}
		b.Run(name, func(b *testing.B) {
			p := DefaultParams()
			p.SelectiveFlush = selective
			var cyc uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(BCBCC, HighlyThreaded, "pathfinder", p, RunOptions{
					FixedDowngrades: 20,
					SpreadOver:      100 * sim.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.VerifyErr != nil {
					b.Fatalf("wrong results: %v", res.VerifyErr)
				}
				cyc = res.Cycles
			}
			b.ReportMetric(float64(cyc), "cycles")
		})
	}
}

// --- Micro-benches of the core structures (host-time performance). ---

// BenchmarkProtectionTableLookup measures the functional table lookup.
func BenchmarkProtectionTableLookup(b *testing.B) {
	store, err := memory.NewStore(16 << 20)
	if err != nil {
		b.Fatal(err)
	}
	table, err := core.NewProtectionTable(store, 0, 4096)
	if err != nil {
		b.Fatal(err)
	}
	for p := arch.PPN(0); p < 4096; p += 3 {
		table.Merge(p, arch.PermRW)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Lookup(arch.PPN(i) % 4096)
	}
}

// BenchmarkBCCProbe measures the functional BCC probe.
func BenchmarkBCCProbe(b *testing.B) {
	store, _ := memory.NewStore(16 << 20)
	table, _ := core.NewProtectionTable(store, 0, 1<<20)
	bcc, err := core.NewBCC(core.DefaultBCCConfig())
	if err != nil {
		b.Fatal(err)
	}
	for p := arch.PPN(0); p < 1<<15; p += 512 {
		bcc.Update(p, arch.PermRW, table)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bcc.Probe(arch.PPN(i) % (1 << 15))
	}
}

// BenchmarkEngine measures raw event throughput of the simulation engine:
// one schedule+fire per op, for both scheduling forms. Steady state must be
// allocation-free (0 allocs/op): the indexed heap recycles slots, and
// neither a long-lived closure nor a pre-bound callback boxes anything.
func BenchmarkEngine(b *testing.B) {
	b.Run("closure", func(b *testing.B) {
		var eng sim.Engine
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				eng.After(100, tick)
			}
		}
		eng.After(100, tick)
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run()
	})
	b.Run("schedule-into", func(b *testing.B) {
		var eng sim.Engine
		n := 0
		var tick sim.EventFunc
		tick = func(_ sim.Time, arg uint64) {
			n++
			if n < b.N {
				eng.ScheduleIntoAfter(100, tick, arg+1)
			}
		}
		eng.ScheduleIntoAfter(100, tick, 0)
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run()
	})
	// depth-64: a standing population of events, so every schedule+fire
	// exercises real heap sift work rather than the trivial 1-element queue.
	b.Run("depth-64", func(b *testing.B) {
		var eng sim.Engine
		n := 0
		var tick sim.EventFunc
		tick = func(_ sim.Time, arg uint64) {
			n++
			if n < b.N {
				eng.ScheduleIntoAfter(sim.Time(50+arg%101), tick, arg*2654435761+1)
			}
		}
		for i := 0; i < 64; i++ {
			eng.ScheduleIntoAfter(sim.Time(i+1), tick, uint64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run()
	})
}

// BenchmarkAblationHugePageInsert compares populating 2 MB of permissions
// via one huge-page translation fan-out against 512 individual base-page
// insertions (paper §3.4.4: the fan-out costs one table-block write).
func BenchmarkAblationHugePageInsert(b *testing.B) {
	newBC := func() *core.BorderControl {
		store, err := memory.NewStore(64 << 20)
		if err != nil {
			b.Fatal(err)
		}
		dram, err := memory.NewDRAM(store, memory.DefaultDRAMConfig())
		if err != nil {
			b.Fatal(err)
		}
		osm := hostosNew(store)
		eng := &sim.Engine{}
		clock := sim.MustClock(700e6)
		bcu, err := core.New("gpu0", core.DefaultConfig(clock), osm, dram, eng)
		if err != nil {
			b.Fatal(err)
		}
		p, err := osm.NewProcess("p")
		if err != nil {
			b.Fatal(err)
		}
		if err := bcu.ProcessStart(p.ASID()); err != nil {
			b.Fatal(err)
		}
		benchASID = p.ASID()
		return bcu
	}
	b.Run("huge-fanout", func(b *testing.B) {
		bcu := newBC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bcu.OnTranslation(0, benchASID, 512, 1024, arch.PermRW, true)
		}
	})
	b.Run("512-base-pages", func(b *testing.B) {
		bcu := newBC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for p := arch.PPN(0); p < 512; p++ {
				bcu.OnTranslation(0, benchASID, 512+arch.VPN(p), 1024+p, arch.PermRW, false)
			}
		}
	})
}

var benchASID arch.ASID

// BenchmarkAblationSparseTable compares the paper's flat Protection Table
// against the sparse two-level layout §3.1.1 mentions but does not
// evaluate: resident footprint for a small working set, and lookup cost.
func BenchmarkAblationSparseTable(b *testing.B) {
	physPages := uint64(4 << 20) // 16 GB of physical memory
	b.Run("flat-lookup", func(b *testing.B) {
		store, err := memory.NewStore(64 << 20)
		if err != nil {
			b.Fatal(err)
		}
		flat, err := core.NewProtectionTable(store, 0, physPages)
		if err != nil {
			b.Fatal(err)
		}
		for p := arch.PPN(0); p < 4096; p++ {
			flat.Merge(p, arch.PermRW)
		}
		b.ReportMetric(float64(core.TableBytes(physPages)), "residentBytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			flat.Lookup(arch.PPN(i) % 4096)
		}
	})
	b.Run("sparse-lookup", func(b *testing.B) {
		store, err := memory.NewStore(64 << 20)
		if err != nil {
			b.Fatal(err)
		}
		sparse := core.NewSparseProtectionTable(store, hostosNew(store).Frames(), physPages)
		for p := arch.PPN(0); p < 4096; p++ {
			if _, err := sparse.Merge(p, arch.PermRW); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(sparse.ResidentBytes()), "residentBytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sparse.Lookup(arch.PPN(i) % 4096)
		}
	})
}
