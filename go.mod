module bordercontrol

go 1.22
