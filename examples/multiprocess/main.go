// Multiprocess: Border Control with two processes co-scheduled on one
// accelerator (paper §3.3).
//
// The Protection Table is per-accelerator, not per-process: while two
// processes run, checks pass against the UNION of their permissions, and
// the overhead does not grow with the process count. When a process
// completes, the accelerator is flushed, the table is zeroed, and the
// remaining process's permissions are re-established lazily through the
// ATS — revocation is total and immediate.
package main

import (
	"fmt"
	"log"

	bc "bordercontrol"
	"bordercontrol/internal/arch"
)

func main() {
	sys, err := bc.NewSystem(bc.BCBCC, bc.HighlyThreaded, bc.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// This demo deliberately probes the border with requests that violate
	// permissions; keep the processes alive so the tour can continue.
	sys.OS.KeepProcessOnViolation = true

	alice := mustProcess(sys, "alice")
	bob := mustProcess(sys, "bob")

	aliceBuf := mustMmap(alice, bc.PermRW)
	bobBuf := mustMmap(bob, bc.PermRead)

	// Fault the pages in (the OS allocates frames on first touch).
	if err := alice.Write(aliceBuf, []byte("alice's data")); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Translate(bobBuf, arch.Read); err != nil {
		log.Fatal(err)
	}
	alicePA := physOf(alice, aliceBuf)
	bobPA := physOf(bob, bobBuf)

	// Both processes start on the accelerator: one Protection Table, use
	// count two.
	sys.ATS.Activate(sys.Name, alice.ASID())
	sys.ATS.Activate(sys.Name, bob.ASID())
	must(sys.BC.ProcessStart(alice.ASID()))
	must(sys.BC.ProcessStart(bob.ASID()))
	fmt.Printf("processes on accelerator: %d (one shared protection table)\n", sys.BC.ActiveProcesses())

	// The accelerator translates each process's buffer through the ATS —
	// each translation inserts permissions into the shared table.
	translate(sys, alice.ASID(), aliceBuf, arch.Write)
	translate(sys, bob.ASID(), bobBuf, arch.Read)

	show(sys, "alice's page (RW mapping)", alice.ASID(), alicePA, arch.Write)
	show(sys, "bob's page (read-only mapping)", bob.ASID(), bobPA, arch.Read)
	show(sys, "bob's page written", bob.ASID(), bobPA, arch.Write) // union lacks W here

	// Alice finishes: caches flushed, BCC invalidated, table ZEROED — even
	// bob's entries are revoked and must be re-inserted via the ATS (paper
	// Figure 3e).
	sys.BC.ProcessComplete(sys.Eng.Now(), alice.ASID())
	sys.ATS.Deactivate(sys.Name, alice.ASID())
	fmt.Printf("\nalice completed; processes on accelerator: %d\n", sys.BC.ActiveProcesses())

	show(sys, "alice's page after her exit", alice.ASID(), alicePA, arch.Read)
	show(sys, "bob's page before re-translation", bob.ASID(), bobPA, arch.Read)
	translate(sys, bob.ASID(), bobBuf, arch.Read)
	show(sys, "bob's page after re-translation", bob.ASID(), bobPA, arch.Read)
}

func mustProcess(sys *bc.System, name string) *bc.Process {
	p, err := sys.OS.NewProcess(name)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func mustMmap(p *bc.Process, perm bc.Perm) bc.Virt {
	v, err := p.Mmap(4096, perm)
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func physOf(p *bc.Process, v bc.Virt) bc.Phys {
	ppn, ok := p.PPNOf(v.PageOf())
	if !ok {
		log.Fatalf("page %#x not mapped", v)
	}
	return ppn.Base()
}

func translate(sys *bc.System, asid arch.ASID, v bc.Virt, kind arch.AccessKind) {
	if _, err := sys.ATS.Translate(sys.Name, asid, v, kind, sys.Eng.Now()); err != nil {
		log.Fatal(err)
	}
}

func show(sys *bc.System, what string, asid arch.ASID, pa bc.Phys, kind arch.AccessKind) {
	dec := sys.BC.Check(sys.Eng.Now(), asid, pa, kind)
	verdict := "ALLOWED"
	if !dec.Allowed {
		verdict = "BLOCKED"
	}
	fmt.Printf("  %-34s %-5s -> %s\n", what, kind, verdict)
}
