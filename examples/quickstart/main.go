// Quickstart: run one Rodinia-derived workload on the simulated GPU under
// the unsafe baseline and under Border Control, and compare runtimes.
//
// This is the paper's headline result in miniature: sandboxing the
// accelerator with a Protection Table + Border Control Cache costs almost
// nothing, while the accelerator keeps its TLBs and physical caches.
package main

import (
	"fmt"
	"log"

	bc "bordercontrol"
)

func main() {
	params := bc.DefaultParams()
	const workload = "bfs"

	baseline, err := bc.Run(bc.ATSOnly, bc.HighlyThreaded, workload, params, bc.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sandboxed, err := bc.Run(bc.BCBCC, bc.HighlyThreaded, workload, params, bc.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []bc.Result{baseline, sandboxed} {
		status := "OK"
		if r.VerifyErr != nil {
			status = "WRONG: " + r.VerifyErr.Error()
		}
		fmt.Printf("%-22v %9d cycles  %7d mem ops  results %s\n", r.Mode, r.Cycles, r.Ops, status)
	}
	overhead := float64(sandboxed.Cycles)/float64(baseline.Cycles)*100 - 100
	fmt.Printf("\nBorder Control sandboxing overhead on %q: %.2f%%\n", workload, overhead)
	fmt.Printf("requests checked at the border: %d (%.3f per GPU cycle), BCC miss ratio %.4f\n",
		sandboxed.BCChecks, sandboxed.RequestsPerCycle(), sandboxed.BCCMissRatio)
	fmt.Printf("protection table cost: %d KB for a 16 GB machine (0.006%% of physical memory)\n",
		bc.ProtectionTableBytes(params.PhysMemBytes/4096)>>10)
}
