// Virtualization: Border Control under a trusted VMM (paper §3.4.2).
//
// Two guest OSes run in partitioned host-physical memory. The accelerator
// is assigned to guest A; its Protection Table lives in VMM-private memory
// that no guest partition can even name, and — the paper's point — Border
// Control itself is UNCHANGED, because the table indexes bare-metal (host)
// physical addresses. A misbehaving accelerator aimed at guest B's memory,
// or at the VMM's own structures, is blocked at the border.
package main

import (
	"fmt"
	"log"

	bc "bordercontrol"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/core"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
)

func main() {
	store, err := bc.NewStore(512 << 20)
	if err != nil {
		log.Fatal(err)
	}
	dram, err := memory.NewDRAM(store, memory.DefaultDRAMConfig())
	if err != nil {
		log.Fatal(err)
	}
	vmm, err := bc.NewVMM(store, 4096) // 16 MB for the VMM
	if err != nil {
		log.Fatal(err)
	}
	guestA, err := vmm.NewGuest("guest-A", 16384) // 64 MB each
	if err != nil {
		log.Fatal(err)
	}
	guestB, err := vmm.NewGuest("guest-B", 16384)
	if err != nil {
		log.Fatal(err)
	}
	guestA.OS.KeepProcessOnViolation = true

	clock := sim.MustClock(700e6)
	eng := &sim.Engine{}
	border, err := core.New("gpu0", core.DefaultConfig(clock), guestA.OS, dram, eng)
	if err != nil {
		log.Fatal(err)
	}
	border.SetTableAllocator(vmm.Frames()) // the §3.4.2 placement
	guestA.OS.AddShootdownListener(border)

	procA := mustProcess(guestA.OS, "a")
	bufA := mustTouch(procA)
	procB := mustProcess(guestB.OS, "b")
	bufB := mustTouch(procB)

	if err := border.ProcessStart(procA.ASID()); err != nil {
		log.Fatal(err)
	}
	tbl := border.Table()
	fmt.Printf("protection table: host frames [%#x, %#x) — VMM-private\n",
		tbl.Base().PageOf(), tbl.Base().PageOf()+arch.PPN(tbl.SizeBytes()/arch.PageSize))
	fmt.Printf("guest A partition: frames [%#x, %#x)\n", guestA.Lo, guestA.Hi)
	fmt.Printf("guest B partition: frames [%#x, %#x)\n\n", guestB.Lo, guestB.Hi)

	// Guest A's accelerator translates its buffer (the ATS insertion).
	ppnA, _ := procA.PPNOf(bufA.PageOf())
	border.OnTranslation(0, procA.ASID(), bufA.PageOf(), ppnA, bc.PermRW, false)

	check := func(what string, pa bc.Phys, kind arch.AccessKind) {
		verdict := "BLOCKED"
		if border.Check(eng.Now(), procA.ASID(), pa, kind).Allowed {
			verdict = "allowed"
		}
		fmt.Printf("  accelerator %-5s %-28s -> %s\n", kind, what, verdict)
	}
	ppnB, _ := procB.PPNOf(bufB.PageOf())
	check("guest A's buffer", ppnA.Base(), arch.Write)
	check("guest B's buffer", ppnB.Base(), arch.Read)
	check("the protection table itself", tbl.Base(), arch.Write)

	if err := vmm.AuditIsolation(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npartition audit: every guest mapping stays inside its partition")
}

func mustProcess(o *bc.OS, name string) *bc.Process {
	p, err := o.NewProcess(name)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func mustTouch(p *hostos.Process) bc.Virt {
	v, err := p.Mmap(arch.PageSize, bc.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Write(v, []byte("guest data")); err != nil {
		log.Fatal(err)
	}
	return v
}
