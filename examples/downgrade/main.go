// Downgrade: memory-mapping updates while the accelerator runs (paper
// §3.2.4 and Figure 7).
//
// The OS periodically downgrades page permissions under a running kernel
// (as context switches, swapping, or memory compaction would). Each
// downgrade triggers a TLB shootdown; with Border Control the accelerator
// additionally flushes the affected page's dirty blocks THROUGH the border
// — where they are still checked against the pre-downgrade permissions —
// before the Protection Table and BCC entries are updated. The program
// shows the cost stays negligible at realistic rates and that results
// remain functionally correct throughout.
package main

import (
	"fmt"
	"log"

	bc "bordercontrol"
)

func main() {
	params := bc.DefaultParams()
	const workload = "pathfinder"

	quiet, err := bc.Run(bc.BCBCC, bc.HighlyThreaded, workload, params, bc.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-24s %12s %12s %10s\n", "downgrades injected", "GPU cycles", "overhead", "results")
	fmt.Printf("%-24d %12d %12s %10s\n", 0, quiet.Cycles, "—", verdict(quiet))

	for _, n := range []int{8, 32, 128} {
		res, err := bc.Run(bc.BCBCC, bc.HighlyThreaded, workload, params, bc.RunOptions{
			FixedDowngrades: n,
			SpreadOver:      quiet.Runtime,
		})
		if err != nil {
			log.Fatal(err)
		}
		ov := float64(res.Cycles)/float64(quiet.Cycles)*100 - 100
		perDowngrade := float64(res.Runtime-quiet.Runtime) / float64(res.Downgrades) / 1000 // ns
		fmt.Printf("%-24d %12d %11.3f%% %10s   (%.2f us per downgrade)\n",
			res.Downgrades, res.Cycles, ov, verdict(res), perDowngrade/1000)
	}

	fmt.Println("\nNote: a sub-millisecond kernel with dozens of injected downgrades is an")
	fmt.Println("EXTREME rate — tens of thousands per second. At the 10-200/s of real")
	fmt.Println("context switching, the measured ~1.5 us per downgrade costs well under")
	fmt.Println("0.05% of runtime (paper Figure 7).")
	fmt.Println("\nEach downgrade: TLB shootdown + drain on any accelerator; plus, under")
	fmt.Println("Border Control, a selective flush of the page's dirty blocks (checked at")
	fmt.Println("the border under the old permissions) before the table entry is updated.")
}

func verdict(r bc.Result) string {
	if r.VerifyErr != nil {
		return "WRONG"
	}
	return "correct"
}
