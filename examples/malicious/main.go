// Malicious: the paper's threat model, live.
//
// A victim process holds a secret (think: a keyboard buffer or a private
// key) in host memory. An accelerator carrying a hardware trojan fabricates
// physical addresses — without ever asking the IOMMU/ATS for a translation
// — and tries to (a) read the secret and (b) overwrite it.
//
// Under the unsafe ATS-only baseline both attacks succeed silently. Under
// Border Control both are blocked at the border (the Protection Table was
// never populated for that page, so it fails closed) and the OS is
// notified.
package main

import (
	"bytes"
	"fmt"
	"log"

	bc "bordercontrol"
)

func main() {
	for _, mode := range []bc.Mode{bc.ATSOnly, bc.BCBCC} {
		fmt.Printf("=== %v ===\n", mode)
		attack(mode)
		fmt.Println()
	}
}

func attack(mode bc.Mode) {
	sys, err := bc.NewSystem(mode, bc.HighlyThreaded, bc.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// The victim process keeps a secret in its address space.
	victim, err := sys.OS.NewProcess("victim")
	if err != nil {
		log.Fatal(err)
	}
	secretVA, err := victim.Mmap(4096, bc.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	secret := []byte("hunter2: the private key material")
	if err := victim.Write(secretVA, secret); err != nil {
		log.Fatal(err)
	}
	secretPPN, _ := victim.PPNOf(secretVA.PageOf())
	secretPA := secretPPN.Base()

	// A legitimate process is using the accelerator (this is what arms the
	// border: the OS set up the ATS and, in BC modes, the Protection
	// Table).
	accelProc, err := sys.OS.NewProcess("accel-user")
	if err != nil {
		log.Fatal(err)
	}
	sys.ATS.Activate(sys.Name, accelProc.ASID())
	if sys.BC != nil {
		if err := sys.BC.ProcessStart(accelProc.ASID()); err != nil {
			log.Fatal(err)
		}
	}

	// The trojan inside the accelerator fires raw physical requests at the
	// victim's page.
	trojan := bc.NewTrojan(sys)

	data, readOK := trojan.TryRead(sys.Eng.Now(), secretPA)
	if readOK && bytes.Contains(data[:], secret[:8]) {
		fmt.Printf("confidentiality: VIOLATED — trojan read %q\n", data[:len(secret)])
	} else if readOK {
		fmt.Println("confidentiality: trojan request reached memory (unexpected contents)")
	} else {
		fmt.Println("confidentiality: PRESERVED — read blocked at the border")
	}

	var evil [128]byte
	copy(evil[:], "pwned")
	writeOK := trojan.TryWrite(sys.Eng.Now(), secretPA, evil)
	var after [64]byte
	if err := victim.Read(secretVA, after[:]); err != nil {
		log.Fatal(err)
	}
	if writeOK && bytes.HasPrefix(after[:], []byte("pwned")) {
		fmt.Printf("integrity:       VIOLATED — victim memory now reads %q\n", after[:5])
	} else {
		fmt.Println("integrity:       PRESERVED — write blocked, victim memory intact")
	}

	if n := len(sys.OS.Violations); n > 0 {
		fmt.Printf("OS was notified of %d border violation(s); first: %v\n", n, sys.OS.Violations[0])
	} else {
		fmt.Println("OS saw nothing (no border checking in this configuration)")
	}
}
